// Tests for the CDCL SAT solver, CNF container and DIMACS I/O.
//
// Correctness of the solver is load-bearing for everything above it
// (IsValid, NaiveDeduce, MaxSAT, GetSug), so besides targeted cases the
// suite cross-checks against brute-force enumeration on hundreds of random
// small formulas, with every solver feature configuration.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/sat/dimacs.h"
#include "src/sat/solver.h"

namespace ccr::sat {
namespace {

// Brute-force satisfiability for <= 20 variables.
bool BruteForceSat(const Cnf& cnf) {
  const int n = cnf.num_vars();
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    bool all = true;
    for (int c = 0; c < cnf.num_clauses() && all; ++c) {
      bool clause_sat = false;
      for (Lit l : cnf.clause(c)) {
        const bool val = (mask >> l.var()) & 1;
        if (val != l.negated()) {
          clause_sat = true;
          break;
        }
      }
      all = clause_sat;
    }
    if (all) return true;
  }
  return cnf.num_clauses() == 0 ? true : false;
}

// Checks a model satisfies the formula.
bool ModelSatisfies(const Cnf& cnf, const Solver& solver) {
  for (int c = 0; c < cnf.num_clauses(); ++c) {
    bool clause_sat = false;
    for (Lit l : cnf.clause(c)) {
      if (solver.ModelValue(l.var()) != l.negated()) {
        clause_sat = true;
        break;
      }
    }
    if (!clause_sat) return false;
  }
  return true;
}

TEST(LitTest, Encoding) {
  const Lit p = Lit::Pos(3);
  const Lit n = Lit::Neg(3);
  EXPECT_EQ(p.var(), 3);
  EXPECT_FALSE(p.negated());
  EXPECT_TRUE(n.negated());
  EXPECT_EQ(~p, n);
  EXPECT_EQ(~n, p);
  EXPECT_EQ(Lit::FromIndex(p.index()), p);
  EXPECT_EQ(p.ToString(), "v3");
  EXPECT_EQ(n.ToString(), "~v3");
}

TEST(CnfTest, BuildAndInspect) {
  Cnf cnf;
  const Var a = cnf.NewVar();
  const Var b = cnf.NewVar();
  cnf.AddBinary(Lit::Pos(a), Lit::Neg(b));
  cnf.AddUnit(Lit::Pos(b));
  EXPECT_EQ(cnf.num_vars(), 2);
  EXPECT_EQ(cnf.num_clauses(), 2);
  EXPECT_EQ(cnf.num_literals(), 3);
  EXPECT_EQ(cnf.clause(0).size(), 2u);
  EXPECT_EQ(cnf.clause(1)[0], Lit::Pos(b));
}

TEST(CnfTest, AddClauseGrowsVars) {
  Cnf cnf;
  cnf.AddUnit(Lit::Pos(9));
  EXPECT_EQ(cnf.num_vars(), 10);
}

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, UnitClauses) {
  Solver s;
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a)}));
  ASSERT_TRUE(s.AddClause({Lit::Neg(b)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(a));
  EXPECT_FALSE(s.ModelValue(b));
}

TEST(SolverTest, ContradictoryUnitsAreUnsat) {
  Solver s;
  const Var a = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a)}));
  EXPECT_FALSE(s.AddClause({Lit::Neg(a)}));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_TRUE(s.IsUnsatForever());
}

TEST(SolverTest, SimplePropagationChain) {
  // a, a->b, b->c  forces c.
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a)}));
  ASSERT_TRUE(s.AddClause({Lit::Neg(a), Lit::Pos(b)}));
  ASSERT_TRUE(s.AddClause({Lit::Neg(b), Lit::Pos(c)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(c));
}

TEST(SolverTest, TautologyIgnored) {
  Solver s;
  const Var a = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Neg(a)}));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, DuplicateLiteralsDeduplicated) {
  Solver s;
  const Var a = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(a)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

// Pigeonhole principle PHP(n+1, n) is a classic hard UNSAT family.
Cnf Pigeonhole(int holes) {
  const int pigeons = holes + 1;
  Cnf cnf;
  auto var = [&](int p, int h) { return p * holes + h; };
  // Every pigeon in some hole.
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Lit::Pos(var(p, h)));
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  // No two pigeons share a hole.
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.AddBinary(Lit::Neg(var(p1, h)), Lit::Neg(var(p2, h)));
      }
    }
  }
  return cnf;
}

TEST(SolverTest, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    Solver s;
    s.AddCnf(Pigeonhole(holes));
    EXPECT_EQ(s.Solve(), SolveResult::kUnsat) << "holes=" << holes;
  }
}

TEST(SolverTest, PigeonholeExactFitSat) {
  // n pigeons into n holes is satisfiable: adapt by dropping one pigeon's
  // clauses — simpler: build a fresh formula for n pigeons / n holes.
  const int n = 5;
  Cnf cnf;
  auto var = [&](int p, int h) { return p * n + h; };
  for (int p = 0; p < n; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < n; ++h) clause.push_back(Lit::Pos(var(p, h)));
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  for (int h = 0; h < n; ++h) {
    for (int p1 = 0; p1 < n; ++p1) {
      for (int p2 = p1 + 1; p2 < n; ++p2) {
        cnf.AddBinary(Lit::Neg(var(p1, h)), Lit::Neg(var(p2, h)));
      }
    }
  }
  Solver s;
  s.AddCnf(cnf);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(ModelSatisfies(cnf, s));
}

TEST(SolverTest, IncrementalAddBetweenSolves) {
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(b)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  ASSERT_TRUE(s.AddClause({Lit::Neg(a)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(b));
  s.AddClause({Lit::Neg(b)});
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, AssumptionsDoNotPersist) {
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(b)}));
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Neg(a)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(b));
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Neg(b)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(a));
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Neg(a), Lit::Neg(b)}),
            SolveResult::kUnsat);
  // And without assumptions everything is still satisfiable.
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_FALSE(s.IsUnsatForever());
}

TEST(SolverTest, FailedAssumptionsFormCore) {
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Neg(a), Lit::Neg(b)}));  // a & b impossible
  ASSERT_EQ(s.SolveWithAssumptions(
                {Lit::Pos(c), Lit::Pos(a), Lit::Pos(b)}),
            SolveResult::kUnsat);
  const auto& core = s.FailedAssumptions();
  EXPECT_FALSE(core.empty());
  // The core must not blame c (it is irrelevant to the conflict).
  for (Lit l : core) EXPECT_NE(l.var(), c);
}

TEST(SolverTest, ImplicationDetectionViaAssumptions) {
  // (¬a ∨ b), a  implies b: Φ ∧ ¬b must be UNSAT (Lemma 6 usage).
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Neg(a), Lit::Pos(b)}));
  ASSERT_TRUE(s.AddClause({Lit::Pos(a)}));
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Neg(b)}), SolveResult::kUnsat);
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Pos(b)}), SolveResult::kSat);
}

TEST(SolverTest, MinimizationStaleSeenRegression) {
  // Distilled from a random-3SAT failure: minimization dropped a literal
  // from a learnt clause, and the in-place compaction then cleared seen_
  // for the shifted tail instead of the dropped literal. The stale mark
  // made the next Analyze skip that variable entirely, learning a unit
  // the formula does not imply — and the solver answered UNSAT on this
  // satisfiable instance. Both minimization modes shared the cleanup.
  constexpr char kDimacs[] =
      "-7 0 12 -3 13 0 8 0 -10 5 0 -11 3 12 0 -15 -14 0 10 -13 0 -7 0 "
      "-10 -6 -14 0 -11 10 0 -5 10 0 -13 -15 0 12 6 0 3 2 0 8 0 6 11 0 "
      "14 -13 0 -15 -14 0 1 13 0 12 6 0 3 -15 0 -12 2 0 13 3 0 -3 16 0 "
      "-12 -16 -10 0 -12 -1 -14 0 11 -2 0\n";
  auto cnf = FromDimacs(kDimacs);
  ASSERT_TRUE(cnf.ok());
  for (const bool deep : {false, true}) {
    SolverOptions opts = SolverOptions::LegacyHeuristics();
    opts.use_deep_ccmin = deep;
    Solver s(opts);
    s.AddCnf(*cnf);
    ASSERT_EQ(s.Solve(), SolveResult::kSat) << "deep_ccmin=" << deep;
    EXPECT_TRUE(ModelSatisfies(*cnf, s)) << "deep_ccmin=" << deep;
  }
  Solver modern;
  modern.AddCnf(*cnf);
  ASSERT_EQ(modern.Solve(), SolveResult::kSat);
  EXPECT_TRUE(ModelSatisfies(*cnf, modern));
}

// Random 3-SAT cross-checked against brute force under every feature
// configuration — the classic MiniSat toggles plus each modernization
// flag (binary watches, LBD tiers, EMA restarts, deep ccmin, witness
// cache) and a mid-stream Simplify() variant that exercises the
// inprocessing passes on half-loaded formulas.
struct FuzzParams {
  bool vsids = true;
  bool phase_saving = true;
  bool restarts = true;
  bool deletion = true;
  bool binary_watches = true;
  bool lbd_tiers = true;
  bool ema_restarts = true;
  bool deep_ccmin = true;
  bool inprocessing = true;
  bool model_cache = true;
  bool simplify_midway = false;  // feed half, Simplify (inprocess), rest
  bool eager_gc = false;         // gc_frac = 0: compact at every chance
  bool mark_eliminable = false;  // BVE a third of the vars, then solve
  bool sls_seed = false;         // run SeedFromLocalSearch before Solve
};

class SolverFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(SolverFuzzTest, MatchesBruteForce) {
  const FuzzParams p = GetParam();
  Rng rng(0xF00D + (p.vsids ? 1 : 0) + (p.phase_saving ? 2 : 0) +
          (p.restarts ? 4 : 0) + (p.deletion ? 8 : 0) +
          (p.binary_watches ? 16 : 0) + (p.lbd_tiers ? 32 : 0) +
          (p.ema_restarts ? 64 : 0) + (p.deep_ccmin ? 128 : 0) +
          (p.inprocessing ? 1024 : 0) + (p.model_cache ? 256 : 0) +
          (p.simplify_midway ? 512 : 0) + (p.eager_gc ? 2048 : 0) +
          (p.mark_eliminable ? 4096 : 0) + (p.sls_seed ? 8192 : 0));
  int sat_count = 0, unsat_count = 0;
  for (int round = 0; round < 150; ++round) {
    const int n_vars = 3 + static_cast<int>(rng.Below(10));
    const int n_clauses = 2 + static_cast<int>(rng.Below(50));
    Cnf cnf;
    cnf.EnsureVars(n_vars);
    for (int c = 0; c < n_clauses; ++c) {
      const int len = 1 + static_cast<int>(rng.Below(3));
      std::vector<Lit> clause;
      for (int k = 0; k < len; ++k) {
        clause.push_back(Lit(static_cast<Var>(rng.Below(n_vars)),
                             rng.Chance(0.5)));
      }
      cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
    }
    SolverOptions opts;
    opts.use_vsids = p.vsids;
    opts.use_phase_saving = p.phase_saving;
    opts.use_restarts = p.restarts;
    opts.use_clause_deletion = p.deletion;
    opts.use_binary_watches = p.binary_watches;
    opts.use_lbd_tiers = p.lbd_tiers;
    opts.use_ema_restarts = p.ema_restarts;
    opts.use_deep_ccmin = p.deep_ccmin;
    opts.use_inprocessing = p.inprocessing;
    opts.use_model_cache = p.model_cache;
    if (p.eager_gc) opts.gc_frac = 0.0;
    Solver solver(opts);
    bool alive = true;
    if (p.simplify_midway) {
      // Half the clauses, a priming+inprocessing Simplify pair, then the
      // rest and one more Simplify over that "delta".
      const int half = cnf.num_clauses() / 2;
      std::vector<Lit> scratch;
      for (int c = 0; c < half; ++c) {
        auto span = cnf.clause(c);
        scratch.assign(span.begin(), span.end());
        alive = solver.AddClause(scratch) && alive;
      }
      if (alive) alive = solver.Simplify();
      for (int c = half; c < cnf.num_clauses(); ++c) {
        auto span = cnf.clause(c);
        scratch.assign(span.begin(), span.end());
        alive = solver.AddClause(scratch) && alive;
      }
      if (alive) alive = solver.Simplify();
    } else {
      solver.AddCnf(cnf);
    }
    if (p.mark_eliminable && alive) {
      // Resolve away a third of the variables; answers and models (via
      // the reconstruction stack) must still match the full formula.
      for (Var v = 0; v < cnf.num_vars(); v += 3) solver.MarkEliminable(v);
      alive = solver.Simplify();
    }
    if (p.sls_seed && alive) {
      // Local-search warm start: rewrites saved phases and may push a
      // witness into the model pool, but the verdict below must still
      // match brute force — SLS can only change time-to-verdict.
      const LocalSearchResult seeded = solver.SeedFromLocalSearch();
      if (seeded.feasible) {
        EXPECT_EQ(seeded.hard_unsat, 0);
      }
    }
    const bool expected = BruteForceSat(cnf);
    const SolveResult got = solver.Solve();
    ASSERT_EQ(got == SolveResult::kSat, expected) << "round " << round;
    if (expected) {
      ++sat_count;
      EXPECT_TRUE(ModelSatisfies(cnf, solver)) << "round " << round;
    } else {
      ++unsat_count;
    }
  }
  // The distribution must exercise both outcomes.
  EXPECT_GT(sat_count, 10);
  EXPECT_GT(unsat_count, 10);
}

INSTANTIATE_TEST_SUITE_P(
    FeatureMatrix, SolverFuzzTest,
    ::testing::Values(
        FuzzParams{},                          // modern defaults
        FuzzParams{.vsids = false},
        FuzzParams{.phase_saving = false},
        FuzzParams{.restarts = false},
        FuzzParams{.deletion = false},
        FuzzParams{.binary_watches = false},
        FuzzParams{.lbd_tiers = false},
        FuzzParams{.ema_restarts = false},
        FuzzParams{.deep_ccmin = false},
        FuzzParams{.model_cache = false},
        FuzzParams{.simplify_midway = true},
        // Arena compaction at every opportunity, alone and on top of the
        // half-loaded inprocessing path.
        FuzzParams{.eager_gc = true},
        FuzzParams{.simplify_midway = true, .eager_gc = true},
        // Bounded variable elimination, with and without eager GC over
        // the freshly rewritten arena.
        FuzzParams{.mark_eliminable = true},
        FuzzParams{.eager_gc = true, .mark_eliminable = true},
        // SLS-seeded lanes: a local-search pass before every Solve, alone
        // and stacked on BVE (eliminated vars must stay off-limits to the
        // flip loop) and on the half-loaded inprocessing path.
        FuzzParams{.sls_seed = true},
        FuzzParams{.mark_eliminable = true, .sls_seed = true},
        FuzzParams{.simplify_midway = true, .sls_seed = true},
        // Fully legacy: the 2003-era solver this repo started from.
        FuzzParams{.vsids = false, .phase_saving = false, .restarts = false,
                   .deletion = false, .binary_watches = false,
                   .lbd_tiers = false, .ema_restarts = false,
                   .deep_ccmin = false, .inprocessing = false,
                   .model_cache = false},
        // Legacy heuristics plus mid-stream Simplify(): with
        // use_inprocessing off it only sweeps satisfied clauses.
        FuzzParams{.binary_watches = false, .lbd_tiers = false,
                   .ema_restarts = false, .deep_ccmin = false,
                   .inprocessing = false, .model_cache = false,
                   .simplify_midway = true}));

TEST(DimacsTest, RoundTrip) {
  Cnf cnf;
  cnf.EnsureVars(3);
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(2));
  cnf.AddUnit(Lit::Pos(1));
  const std::string text = ToDimacs(cnf);
  EXPECT_NE(text.find("p cnf 3 2"), std::string::npos);
  auto parsed = FromDimacs(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vars(), 3);
  EXPECT_EQ(parsed->num_clauses(), 2);
  EXPECT_EQ(parsed->clause(0)[0], Lit::Pos(0));
  EXPECT_EQ(parsed->clause(0)[1], Lit::Neg(2));
}

TEST(DimacsTest, ParsesCommentsAndMissingHeader) {
  auto parsed = FromDimacs("c a comment\n1 -2 0\n2 0\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_clauses(), 2);
  EXPECT_EQ(parsed->num_vars(), 2);
}

TEST(DimacsTest, RejectsUnterminatedClause) {
  EXPECT_FALSE(FromDimacs("1 -2\n").ok());
}

TEST(SolverTest, StatsAccumulate) {
  Solver s;
  s.AddCnf(Pigeonhole(5));
  ASSERT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0);
  EXPECT_GT(s.stats().propagations, 0);
}

TEST(SolverTest, ConflictBudgetReturnsUnknown) {
  SolverOptions opts;
  opts.max_conflicts = 1;
  Solver s(opts);
  s.AddCnf(Pigeonhole(7));
  EXPECT_EQ(s.Solve(), SolveResult::kUnknown);
}

TEST(SolverTest, ResetIsObservablyAFreshSolver) {
  // One long-lived solver Reset between formulas must be bit-compatible
  // with a brand-new solver on every formula: same answers, same models,
  // same search statistics. This is what lets SessionScratch recycle a
  // solver across entities without changing any result.
  Rng rng(0xBEEF);
  Solver recycled;
  for (int round = 0; round < 60; ++round) {
    const int n_vars = 3 + static_cast<int>(rng.Below(10));
    const int n_clauses = 2 + static_cast<int>(rng.Below(50));
    Cnf cnf;
    cnf.EnsureVars(n_vars);
    for (int c = 0; c < n_clauses; ++c) {
      const int len = 1 + static_cast<int>(rng.Below(3));
      std::vector<Lit> clause;
      for (int k = 0; k < len; ++k) {
        clause.push_back(
            Lit(static_cast<Var>(rng.Below(n_vars)), rng.Chance(0.5)));
      }
      cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
    }

    recycled.Reset();
    EXPECT_EQ(recycled.num_vars(), 0) << "round " << round;
    recycled.AddCnf(cnf);
    Solver fresh;
    fresh.AddCnf(cnf);

    const SolveResult got_recycled = recycled.Solve();
    const SolveResult got_fresh = fresh.Solve();
    ASSERT_EQ(got_recycled, got_fresh) << "round " << round;
    EXPECT_EQ(recycled.stats().conflicts, fresh.stats().conflicts)
        << "round " << round;
    EXPECT_EQ(recycled.stats().decisions, fresh.stats().decisions)
        << "round " << round;
    EXPECT_EQ(recycled.stats().propagations, fresh.stats().propagations)
        << "round " << round;
    if (got_recycled == SolveResult::kSat) {
      for (Var v = 0; v < cnf.num_vars(); ++v) {
        EXPECT_EQ(recycled.ModelLbool(v), fresh.ModelLbool(v))
            << "round " << round << " var " << v;
      }
    }
  }
}

TEST(ScopedVarsTest, ClausesBindOnlyUnderActivation) {
  Solver solver;
  const Var x = solver.NewVar();
  ScopedVars scope(&solver);
  scope.AddClause({Lit::Pos(x)});  // x, but only while the scope is live

  // Without the activation assumption the clause does not bind.
  ASSERT_EQ(solver.SolveWithAssumptions({Lit::Neg(x)}), SolveResult::kSat);
  // With it, x is forced.
  ASSERT_EQ(solver.SolveWithAssumptions({scope.activation(), Lit::Neg(x)}),
            SolveResult::kUnsat);
  ASSERT_EQ(solver.SolveWithAssumptions({scope.activation()}),
            SolveResult::kSat);
  EXPECT_TRUE(solver.ModelValue(x));
}

TEST(ScopedVarsTest, ReleaseDeactivatesAndFreezes) {
  Solver solver;
  const Var x = solver.NewVar();
  Var s = kVarUndef;
  {
    ScopedVars scope(&solver);
    s = scope.NewVar();
    // s -> x while the scope lives.
    scope.AddClause({Lit::Neg(s), Lit::Pos(x)});
    ASSERT_EQ(solver.SolveWithAssumptions(
                  {scope.activation(), Lit::Pos(s), Lit::Neg(x)}),
              SolveResult::kUnsat);
  }  // destructor releases

  // The scope clause is gone: s-and-not-x is fine now... except s itself
  // is frozen false, so ask for ¬x alone and read s from the model.
  ASSERT_EQ(solver.SolveWithAssumptions({Lit::Neg(x)}), SolveResult::kSat);
  EXPECT_FALSE(solver.ModelValue(s));  // frozen
  // Asserting the frozen var is now contradictory — it cannot resurface.
  EXPECT_EQ(solver.SolveWithAssumptions({Lit::Pos(s)}), SolveResult::kUnsat);
}

TEST(ScopedVarsTest, ReleasedScopesDoNotDisturbLaterQueries) {
  // A solver that has opened and released many scopes must keep answering
  // base-formula queries exactly like a fresh solver (semantics, not
  // necessarily identical search statistics).
  Rng rng(0xFACE);
  for (int round = 0; round < 30; ++round) {
    const int n_vars = 3 + static_cast<int>(rng.Below(8));
    Cnf cnf;
    cnf.EnsureVars(n_vars);
    const int n_clauses = 2 + static_cast<int>(rng.Below(30));
    for (int c = 0; c < n_clauses; ++c) {
      const int len = 1 + static_cast<int>(rng.Below(3));
      std::vector<Lit> clause;
      for (int k = 0; k < len; ++k) {
        clause.push_back(
            Lit(static_cast<Var>(rng.Below(n_vars)), rng.Chance(0.5)));
      }
      cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
    }
    Solver scoped;
    scoped.AddCnf(cnf);
    for (int burst = 0; burst < 3; ++burst) {
      ScopedVars scope(&scoped);
      const Var t = scope.NewVar();
      scope.AddClause({Lit::Pos(t), Lit::Neg(t)});  // tautology-ish noise
      scope.AddClause({Lit::Neg(t),
                       Lit(static_cast<Var>(rng.Below(n_vars)),
                           rng.Chance(0.5))});
      (void)scoped.SolveWithAssumptions({scope.activation(), Lit::Pos(t)});
    }
    Solver plain;
    plain.AddCnf(cnf);
    EXPECT_EQ(scoped.Solve(), plain.Solve()) << "round " << round;
  }
}

TEST(SolverStatsTest, AssumptionSolvesAreCounted) {
  Solver solver;
  const Var x = solver.NewVar();
  EXPECT_EQ(solver.stats().assumption_solves, 0);
  solver.Solve();  // no assumptions: not counted
  EXPECT_EQ(solver.stats().assumption_solves, 0);
  solver.SolveWithAssumptions({Lit::Pos(x)});
  EXPECT_EQ(solver.stats().assumption_solves, 1);
  EXPECT_EQ(solver.last_call_stats().assumption_solves, 1);
  solver.Solve();
  EXPECT_EQ(solver.stats().assumption_solves, 1);
  EXPECT_EQ(solver.last_call_stats().assumption_solves, 0);
}

}  // namespace
}  // namespace ccr::sat
