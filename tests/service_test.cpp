// Tests for the serving layer: SessionManager request flows (open, round,
// answer, snapshot, evict, close), LRU eviction under a resident cap with
// byte-identical verdicts after rehydration, bounded-queue admission
// control, queue deadlines, and the socket server end to end — including
// the robustness contract that malformed frames and bad versions never
// wedge the daemon.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/data/person_generator.h"
#include "src/service/client.h"
#include "src/service/server.h"
#include "src/service/session_manager.h"
#include "src/service/snapshot.h"
#include "src/service/wire.h"

namespace ccr {
namespace service {
namespace {

Dataset SmallPersonCorpus(int entities = 4) {
  PersonOptions opts;
  opts.num_entities = entities;
  opts.min_tuples = 6;
  opts.max_tuples = 16;
  opts.seed = 7;
  return GeneratePerson(opts);
}

std::string SnapshotPayload(const Dataset& ds, int entity) {
  SessionSnapshot snap;
  snap.spec = ds.MakeSpec(entity);
  return SnapshotToJson(snap, /*indent=*/0);
}

ServiceReply Call(SessionManager* manager, RequestType type,
                  const std::string& session_id,
                  const std::string& payload = "",
                  int64_t deadline_ms = 0) {
  return manager->Call(ServiceRequest{type, session_id, payload, deadline_ms});
}

// --- manager request flows -------------------------------------------------

TEST(SessionManagerTest, OpenRoundAnswerSnapshotCloseFlow) {
  const Dataset ds = SmallPersonCorpus();
  SessionManager manager(ServiceOptions{});

  ServiceReply opened =
      Call(&manager, RequestType::kOpen, "alice", SnapshotPayload(ds, 0));
  ASSERT_EQ(opened.code, ErrorCode::kOk) << opened.payload;
  EXPECT_NE(opened.payload.find("\"opened\": true"), std::string::npos);
  EXPECT_EQ(manager.known_sessions(), 1);
  EXPECT_EQ(manager.resident_sessions(), 1);

  ServiceReply round = Call(&manager, RequestType::kRound, "alice");
  ASSERT_EQ(round.code, ErrorCode::kOk) << round.payload;
  EXPECT_NE(round.payload.find("\"valid\": true"), std::string::npos);

  // Answer attribute 0 with a concrete value; the manager builds the delta.
  ServiceReply answered =
      Call(&manager, RequestType::kAnswer, "alice",
           "{\"answers\": [[0, {\"s\": \"ground truth\"}]]}");
  ASSERT_EQ(answered.code, ErrorCode::kOk) << answered.payload;
  EXPECT_NE(answered.payload.find("\"extended\": true"), std::string::npos);

  // The snapshot now carries both ops and parses back.
  ServiceReply snapshot = Call(&manager, RequestType::kSnapshot, "alice");
  ASSERT_EQ(snapshot.code, ErrorCode::kOk);
  auto parsed = SnapshotFromJson(snapshot.payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().ops.size(), 2u);

  ServiceReply closed = Call(&manager, RequestType::kClose, "alice");
  ASSERT_EQ(closed.code, ErrorCode::kOk);
  EXPECT_EQ(manager.known_sessions(), 0);
  EXPECT_EQ(manager.resident_sessions(), 0);
  EXPECT_EQ(Call(&manager, RequestType::kRound, "alice").code,
            ErrorCode::kNotFound);
}

TEST(SessionManagerTest, OpenRejectsDuplicatesAndMalformedSnapshots) {
  const Dataset ds = SmallPersonCorpus();
  SessionManager manager(ServiceOptions{});
  EXPECT_EQ(Call(&manager, RequestType::kOpen, "", SnapshotPayload(ds, 0))
                .code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(Call(&manager, RequestType::kOpen, "a", "not json").code,
            ErrorCode::kBadRequest);
  ASSERT_EQ(
      Call(&manager, RequestType::kOpen, "a", SnapshotPayload(ds, 0)).code,
      ErrorCode::kOk);
  EXPECT_EQ(
      Call(&manager, RequestType::kOpen, "a", SnapshotPayload(ds, 1)).code,
      ErrorCode::kAlreadyExists);
  EXPECT_EQ(manager.known_sessions(), 1);
}

TEST(SessionManagerTest, SessionOpsOnUnknownIdsReturnNotFound) {
  SessionManager manager(ServiceOptions{});
  for (const RequestType type :
       {RequestType::kRound, RequestType::kAnswer, RequestType::kExtend,
        RequestType::kSnapshot, RequestType::kEvict, RequestType::kClose}) {
    EXPECT_EQ(Call(&manager, type, "ghost").code, ErrorCode::kNotFound);
  }
}

TEST(SessionManagerTest, RejectsMalformedBodies) {
  const Dataset ds = SmallPersonCorpus();
  SessionManager manager(ServiceOptions{});
  ASSERT_EQ(
      Call(&manager, RequestType::kOpen, "a", SnapshotPayload(ds, 0)).code,
      ErrorCode::kOk);
  // Unknown field, empty answers, answer against a bad attribute index.
  EXPECT_EQ(Call(&manager, RequestType::kAnswer, "a", "{\"junk\": 1}").code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(Call(&manager, RequestType::kAnswer, "a", "{\"answers\": []}")
                .code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(Call(&manager, RequestType::kAnswer, "a",
                 "{\"answers\": [[999, {\"i\": 1}]]}")
                .code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(Call(&manager, RequestType::kExtend, "a", "[1, 2]").code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(Call(&manager, RequestType::kPing, "", "{\"junk\": 1}").code,
            ErrorCode::kBadRequest);
  // The session survived every rejection.
  EXPECT_EQ(Call(&manager, RequestType::kRound, "a").code, ErrorCode::kOk);
}

// --- eviction and rehydration ---------------------------------------------

// A manager capped at one resident session must evict on every second
// session's use — and the evicted/rehydrated session must answer every
// request with the same bytes as a manager that never evicts.
TEST(SessionManagerTest, LruEvictionPreservesVerdictBytes) {
  const Dataset ds = SmallPersonCorpus();
  ServiceOptions roomy;
  roomy.max_resident = 8;
  ServiceOptions tight;
  tight.max_resident = 1;
  SessionManager never_evicts(roomy);
  SessionManager churns(tight);

  for (SessionManager* m : {&never_evicts, &churns}) {
    ASSERT_EQ(Call(m, RequestType::kOpen, "a", SnapshotPayload(ds, 0)).code,
              ErrorCode::kOk);
    ASSERT_EQ(Call(m, RequestType::kOpen, "b", SnapshotPayload(ds, 1)).code,
              ErrorCode::kOk);
  }
  EXPECT_EQ(never_evicts.resident_sessions(), 2);
  EXPECT_EQ(churns.resident_sessions(), 1);

  // Alternate sessions so the tight manager evicts + rehydrates every step.
  const struct {
    RequestType type;
    const char* id;
    const char* payload;
  } script[] = {
      {RequestType::kRound, "a", ""},
      {RequestType::kRound, "b", ""},
      {RequestType::kAnswer, "a", "{\"answers\": [[1, {\"s\": \"v\"}]]}"},
      {RequestType::kRound, "a", ""},
      {RequestType::kSnapshot, "b", ""},
      {RequestType::kRound, "b", ""},
  };
  for (const auto& step : script) {
    const ServiceReply want =
        Call(&never_evicts, step.type, step.id, step.payload);
    const ServiceReply got = Call(&churns, step.type, step.id, step.payload);
    ASSERT_EQ(want.code, ErrorCode::kOk) << want.payload;
    EXPECT_EQ(want.code, got.code);
    EXPECT_EQ(want.payload, got.payload)
        << "type " << static_cast<int>(step.type) << " on '" << step.id
        << "'";
  }

  const ServiceReply stats = Call(&churns, RequestType::kStats, "");
  ASSERT_EQ(stats.code, ErrorCode::kOk);
  EXPECT_NE(stats.payload.find("\"rehydrations\": "), std::string::npos);
  // Every switch between a and b forced a rehydration.
  EXPECT_EQ(stats.payload.find("\"rehydrations\": 0"), std::string::npos)
      << stats.payload;
  EXPECT_EQ(stats.payload.find("\"evictions_lru\": 0"), std::string::npos)
      << stats.payload;
}

TEST(SessionManagerTest, ExplicitEvictThenUseRehydrates) {
  const Dataset ds = SmallPersonCorpus();
  SessionManager manager(ServiceOptions{});
  ASSERT_EQ(
      Call(&manager, RequestType::kOpen, "a", SnapshotPayload(ds, 0)).code,
      ErrorCode::kOk);
  const ServiceReply before = Call(&manager, RequestType::kSnapshot, "a");

  ServiceReply evicted = Call(&manager, RequestType::kEvict, "a");
  ASSERT_EQ(evicted.code, ErrorCode::kOk);
  EXPECT_NE(evicted.payload.find("\"was_live\": true"), std::string::npos);
  EXPECT_EQ(manager.resident_sessions(), 0);
  EXPECT_EQ(manager.known_sessions(), 1);

  // Snapshots serve straight from the frozen state; a second evict is a
  // no-op; a round rehydrates.
  EXPECT_EQ(Call(&manager, RequestType::kSnapshot, "a").payload,
            before.payload);
  ServiceReply again = Call(&manager, RequestType::kEvict, "a");
  EXPECT_NE(again.payload.find("\"was_live\": false"), std::string::npos);
  EXPECT_EQ(Call(&manager, RequestType::kRound, "a").code, ErrorCode::kOk);
  EXPECT_EQ(manager.resident_sessions(), 1);
}

// --- admission control and deadlines ---------------------------------------

TEST(SessionManagerTest, FullQueueRejectsWithOverload) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  SessionManager manager(opts);

  // Park the worker, then saturate the one-slot queue. Submitting sleepy
  // pings until admission fails is deterministic regardless of how fast
  // the worker drains the first one.
  std::atomic<int> completed{0};
  int admitted = 0;
  bool saw_reject = false;
  for (int i = 0; i < 64 && !saw_reject; ++i) {
    const bool ok = manager.Submit(
        ServiceRequest{RequestType::kPing, "", "{\"sleep_ms\": 100}", 0},
        [&](ServiceReply) { completed.fetch_add(1); });
    if (ok) {
      ++admitted;
    } else {
      saw_reject = true;
    }
  }
  EXPECT_TRUE(saw_reject);
  EXPECT_GE(admitted, 1);

  // The synchronous wrapper surfaces the rejection as OVERLOADED. Keep
  // trying while the queue drains; at least the first attempt (queue still
  // full) must reject.
  const ServiceReply reply =
      Call(&manager, RequestType::kPing, "", "{\"sleep_ms\": 1}");
  if (reply.code != ErrorCode::kOk) {
    EXPECT_EQ(reply.code, ErrorCode::kOverloaded);
    EXPECT_NE(reply.payload.find("retry"), std::string::npos);
  }

  // Admitted requests all complete; counters recorded the rejections.
  while (completed.load() < admitted) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const ServiceReply stats = Call(&manager, RequestType::kStats, "");
  EXPECT_EQ(stats.payload.find("\"rejected_overload\": 0"),
            std::string::npos)
      << stats.payload;
}

TEST(SessionManagerTest, QueuedRequestsExpireAtTheirDeadline) {
  ServiceOptions opts;
  opts.workers = 1;
  SessionManager manager(opts);

  // Occupy the only worker long enough that the next request's 1 ms
  // deadline is long gone by the time it is dequeued.
  std::atomic<bool> sleeper_done{false};
  ASSERT_TRUE(manager.Submit(
      ServiceRequest{RequestType::kPing, "", "{\"sleep_ms\": 150}", 0},
      [&](ServiceReply) { sleeper_done.store(true); }));
  const ServiceReply late =
      Call(&manager, RequestType::kPing, "", "", /*deadline_ms=*/1);
  EXPECT_EQ(late.code, ErrorCode::kDeadlineExceeded);
  EXPECT_NE(late.payload.find("expired"), std::string::npos);
  while (!sleeper_done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(SessionManagerTest, ShutdownRejectsNewWorkAndIsIdempotent) {
  SessionManager manager(ServiceOptions{});
  EXPECT_EQ(Call(&manager, RequestType::kPing, "").code, ErrorCode::kOk);
  manager.Shutdown();
  manager.Shutdown();
  EXPECT_EQ(Call(&manager, RequestType::kPing, "").code,
            ErrorCode::kShuttingDown);
  EXPECT_FALSE(manager.Submit(ServiceRequest{RequestType::kPing, "", "", 0},
                              [](ServiceReply) {}));
}

// --- socket server end to end ----------------------------------------------

TEST(ServerTest, ServesTheFullSessionLifecycleOverTcp) {
  const Dataset ds = SmallPersonCorpus();
  SessionManager manager(ServiceOptions{});
  Server server(&manager, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto client = ServiceClient::Dial("tcp:" + std::to_string(server.port()));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto pong = client.value().Call(RequestType::kPing, "", "");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(pong.value().is_response());
  EXPECT_EQ(pong.value().status, ErrorCode::kOk);
  EXPECT_EQ(pong.value().body, "{\"pong\": true}");

  auto opened = client.value().Call(RequestType::kOpen, "sess",
                                    SnapshotPayload(ds, 0));
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(opened.value().status, ErrorCode::kOk) << opened.value().body;
  EXPECT_EQ(opened.value().session_id, "sess");

  auto round = client.value().Call(RequestType::kRound, "sess", "");
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().status, ErrorCode::kOk);
  EXPECT_NE(round.value().body.find("\"valid\""), std::string::npos);

  auto missing = client.value().Call(RequestType::kRound, "nope", "");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, ErrorCode::kNotFound);

  server.Shutdown();
}

TEST(ServerTest, BadVersionGetsAnErrorAndTheConnectionSurvives) {
  SessionManager manager(ServiceOptions{});
  Server server(&manager, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = ServiceClient::Dial("tcp:" + std::to_string(server.port()));
  ASSERT_TRUE(client.ok());

  Frame bad;
  bad.version = 99;
  bad.type = static_cast<uint8_t>(RequestType::kPing);
  auto reply = client.value().Call(bad);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().status, ErrorCode::kBadVersion);

  // Same connection keeps working afterwards.
  auto pong = client.value().Call(RequestType::kPing, "", "");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().status, ErrorCode::kOk);
  server.Shutdown();
}

TEST(ServerTest, MalformedFramesDropOnlyTheOffendingConnection) {
  SessionManager manager(ServiceOptions{});
  Server server(&manager, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  auto good = ServiceClient::Dial("tcp:" + std::to_string(server.port()));
  ASSERT_TRUE(good.ok());

  // A raw socket writes garbage whose length prefix (0x58585858) blows the
  // frame cap: the server must answer with a TOO_LARGE error frame and
  // close only this connection.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "XXXXXXXXXXXXXXXX";
  ASSERT_GT(::write(fd, garbage, sizeof(garbage) - 1), 0);
  FrameDecoder decoder;
  Frame error_frame;
  char buf[4096];
  bool got_error = false;
  while (!got_error) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // server may close right after the error frame
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    if (decoder.Next(&error_frame) == FrameDecoder::Outcome::kFrame) {
      got_error = true;
    }
  }
  ASSERT_TRUE(got_error);
  EXPECT_EQ(error_frame.status, ErrorCode::kTooLarge);
  ::close(fd);

  // The well-behaved connection is unaffected.
  auto pong = good.value().Call(RequestType::kPing, "", "");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong.value().status, ErrorCode::kOk);
  server.Shutdown();
}

TEST(ServerTest, ShutdownFrameStopsTheServerCleanly) {
  SessionManager manager(ServiceOptions{});
  Server server(&manager, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = ServiceClient::Dial("tcp:" + std::to_string(server.port()));
  ASSERT_TRUE(client.ok());

  auto reply = client.value().Call(RequestType::kShutdown, "", "");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().body, "{\"stopping\": true}");

  // Wait() returns because the SHUTDOWN frame requested the stop; the
  // orderly teardown then joins every thread (the daemon's exit path).
  server.Wait();
  server.Shutdown();
  EXPECT_EQ(Call(&manager, RequestType::kPing, "").code, ErrorCode::kOk);
}

TEST(ServerTest, ServesOverUnixSockets) {
  char tmpl[] = "/tmp/ccr_service_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/ccr.sock";

  SessionManager manager(ServiceOptions{});
  ServerOptions opts;
  opts.listen = "unix:" + path;
  Server server(&manager, opts);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.port(), -1);

  auto client = ServiceClient::Dial("unix:" + path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto pong = client.value().Call(RequestType::kPing, "", "");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().status, ErrorCode::kOk);

  server.Shutdown();
  // The socket file is unlinked on shutdown.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
  ::rmdir(tmpl);
}

TEST(ServerTest, RejectsBadListenSpecs) {
  SessionManager manager(ServiceOptions{});
  for (const char* spec : {"", "udp:1234", "unix:", "http://x"}) {
    ServerOptions opts;
    opts.listen = spec;
    Server server(&manager, opts);
    EXPECT_FALSE(server.Start().ok()) << spec;
  }
}

}  // namespace
}  // namespace service
}  // namespace ccr
