// Tests for the encode-once/solve-many pipeline (src/core/session.h):
// the session engine must be indistinguishable from a from-scratch
// per-round rebuild, across generators, multi-round oracle runs, the
// invalid-answer path, and the incremental/rebuild extension split.

#include <gtest/gtest.h>

#include <vector>

#include "paper_fixture.h"
#include "src/core/session.h"
#include "src/data/career_generator.h"
#include "src/data/dataset.h"
#include "src/data/nba_generator.h"
#include "src/data/person_generator.h"

namespace ccr {
namespace {

using testing::GeorgeSpec;
using testing::PaperSchema;

void ExpectSameResult(const ResolveResult& a, const ResolveResult& b,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.rounds_used, b.rounds_used);
  ASSERT_EQ(a.true_values.size(), b.true_values.size());
  for (size_t i = 0; i < a.true_values.size(); ++i) {
    EXPECT_EQ(a.true_values[i], b.true_values[i]) << "attr " << i;
  }
  EXPECT_EQ(a.resolved, b.resolved);
  EXPECT_EQ(a.user_provided, b.user_provided);
  ASSERT_EQ(a.round_values.size(), b.round_values.size());
  for (size_t k = 0; k < a.round_values.size(); ++k) {
    for (size_t i = 0; i < a.round_values[k].size(); ++i) {
      EXPECT_EQ(a.round_values[k][i], b.round_values[k][i])
          << "round " << k << " attr " << i;
    }
    EXPECT_EQ(a.round_resolved[k], b.round_resolved[k]) << "round " << k;
  }
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t k = 0; k < a.trace.size(); ++k) {
    EXPECT_EQ(a.trace[k].round, b.trace[k].round);
    EXPECT_EQ(a.trace[k].resolved_attrs, b.trace[k].resolved_attrs);
  }
}

// Resolves every entity of `ds` through both engines and demands
// identical results. answers_per_round = 1 forces several interaction
// rounds, exercising repeated incremental extension.
void ExpectEquivalenceOnDataset(const Dataset& ds, int max_rounds,
                                int answers_per_round) {
  for (size_t e = 0; e < ds.entities.size(); ++e) {
    ResolveOptions session_opts;
    session_opts.max_rounds = max_rounds;
    session_opts.use_session = true;
    ResolveOptions legacy_opts = session_opts;
    legacy_opts.use_session = false;

    TruthOracle session_oracle(ds.entities[e].truth, answers_per_round);
    TruthOracle legacy_oracle(ds.entities[e].truth, answers_per_round);
    auto with_session =
        Resolve(ds.MakeSpec(static_cast<int>(e)), &session_oracle,
                session_opts);
    auto with_legacy = Resolve(ds.MakeSpec(static_cast<int>(e)),
                               &legacy_oracle, legacy_opts);
    ASSERT_EQ(with_session.ok(), with_legacy.ok());
    if (!with_session.ok()) continue;
    ExpectSameResult(*with_session, *with_legacy,
                     ds.name + " entity " + std::to_string(e));

    // No-oracle (fully automatic) pass as well.
    auto auto_session =
        Resolve(ds.MakeSpec(static_cast<int>(e)), nullptr, session_opts);
    auto auto_legacy =
        Resolve(ds.MakeSpec(static_cast<int>(e)), nullptr, legacy_opts);
    ASSERT_TRUE(auto_session.ok());
    ASSERT_TRUE(auto_legacy.ok());
    ExpectSameResult(*auto_session, *auto_legacy,
                     ds.name + " entity " + std::to_string(e) + " (auto)");
  }
}

TEST(SessionEquivalenceTest, NbaMultiRound) {
  NbaOptions opts;
  opts.num_entities = 12;
  opts.max_tuples = 60;
  ExpectEquivalenceOnDataset(GenerateNba(opts), /*max_rounds=*/3,
                             /*answers_per_round=*/1);
}

TEST(SessionEquivalenceTest, CareerMultiRound) {
  CareerOptions opts;
  opts.num_entities = 10;
  opts.max_tuples = 60;
  ExpectEquivalenceOnDataset(GenerateCareer(opts), /*max_rounds=*/3,
                             /*answers_per_round=*/1);
}

TEST(SessionEquivalenceTest, PersonMultiRound) {
  PersonOptions opts;
  opts.num_entities = 8;
  opts.min_tuples = 8;
  opts.max_tuples = 48;
  ExpectEquivalenceOnDataset(GeneratePerson(opts), /*max_rounds=*/3,
                             /*answers_per_round=*/1);
}

TEST(SessionEquivalenceTest, PaperExampleMultiAnswerRounds) {
  // The George example with generous answers resolves in one round; with
  // one answer per round it takes several — run both widths.
  const Schema s = PaperSchema();
  std::vector<Value> truth(s.size(), Value::Null());
  truth[s.IndexOf("status")] = Value::Str("retired");
  for (int per_round : {1, 100}) {
    ResolveOptions session_opts;
    session_opts.use_session = true;
    ResolveOptions legacy_opts = session_opts;
    legacy_opts.use_session = false;
    TruthOracle o1(truth, per_round), o2(truth, per_round);
    auto a = Resolve(GeorgeSpec(), &o1, session_opts);
    auto b = Resolve(GeorgeSpec(), &o2, legacy_opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameResult(*a, *b,
                     "george per_round=" + std::to_string(per_round));
  }
}

// Oracle answering its fixed script for *every* scripted attribute, even
// ones the suggestion did not ask for (users may volunteer values) — used
// to push the session into the invalid-answer branch.
class ScriptedOracle : public UserOracle {
 public:
  explicit ScriptedOracle(std::vector<Value> values)
      : values_(std::move(values)) {}

  std::vector<Answer> Provide(const Specification&, const Suggestion&,
                              const VarMap&) override {
    if (answered_) return {};
    answered_ = true;
    std::vector<Answer> out;
    for (size_t attr = 0; attr < values_.size(); ++attr) {
      if (!values_[attr].is_null()) {
        out.push_back({static_cast<int>(attr), values_[attr]});
      }
    }
    return out;
  }

 private:
  std::vector<Value> values_;
  bool answered_ = false;
};

// A two-attribute spec with a CFD A=a1 -> B=b1 and no currency orders.
Specification CfdSpec() {
  Schema schema = Schema::Make({"A", "B"}).value();
  EntityInstance e(schema, "cfd-entity");
  EXPECT_TRUE(
      e.Add(Tuple({Value::Str("a1"), Value::Str("b1")})).ok());
  EXPECT_TRUE(
      e.Add(Tuple({Value::Str("a2"), Value::Str("b2")})).ok());
  Specification se;
  se.temporal = TemporalInstance(std::move(e));
  se.gamma.emplace_back(
      std::vector<std::pair<int, Value>>{{0, Value::Str("a1")}}, 1,
      Value::Str("b1"));
  return se;
}

TEST(SessionEquivalenceTest, InvalidAnswerPathMatchesLegacy) {
  // Answering A=a1 and B=b2 contradicts the CFD (a1 current forces b1
  // current): the extended specification is invalid and both engines must
  // report the same partial result.
  std::vector<Value> script = {Value::Str("a1"), Value::Str("b2")};
  ResolveOptions session_opts;
  session_opts.use_session = true;
  ResolveOptions legacy_opts = session_opts;
  legacy_opts.use_session = false;

  ScriptedOracle o1(script), o2(script);
  auto a = Resolve(CfdSpec(), &o1, session_opts);
  auto b = Resolve(CfdSpec(), &o2, legacy_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Round 0 is valid-but-incomplete; the answers make round 1 invalid.
  EXPECT_FALSE(a->complete);
  EXPECT_TRUE(a->valid);
  ASSERT_EQ(a->trace.size(), 2u);
  ExpectSameResult(*a, *b, "invalid answer");
}

TEST(ResolutionSessionTest, InDomainAnswerTakesIncrementalPath) {
  auto session = ResolutionSession::Create(CfdSpec());
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->CheckValidity().valid);

  // t_o answers A = a2 (already in the domain): append-only extension.
  PartialTemporalOrder ot;
  ot.new_tuples.push_back(Tuple({Value::Str("a2"), Value::Null()}));
  ot.orders.emplace_back(0, 0, 2);
  ot.orders.emplace_back(0, 1, 2);
  ASSERT_TRUE(session->ExtendWith(ot).ok());
  EXPECT_EQ(session->incremental_extensions(), 1);
  EXPECT_EQ(session->rebuilds(), 0);
  EXPECT_TRUE(session->CheckValidity().valid);
}

TEST(ResolutionSessionTest, NewCfdLhsValueFallsBackToRebuild) {
  auto session = ResolutionSession::Create(CfdSpec());
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->CheckValidity().valid);

  // t_o carries a *new* value for A — the LHS attribute of the grounded
  // CFD — which strengthens the CFD's rule bodies: not expressible
  // append-only, so the session must rebuild (and still be correct).
  PartialTemporalOrder ot;
  ot.new_tuples.push_back(Tuple({Value::Str("a3"), Value::Null()}));
  ot.orders.emplace_back(0, 0, 2);
  ot.orders.emplace_back(0, 1, 2);
  ASSERT_TRUE(session->ExtendWith(ot).ok());
  EXPECT_EQ(session->incremental_extensions(), 0);
  EXPECT_EQ(session->rebuilds(), 1);
  EXPECT_TRUE(session->CheckValidity().valid);

  // The rebuilt encoding matches a from-scratch grounding of the
  // extended specification.
  auto direct = Extend(CfdSpec(), ot);
  ASSERT_TRUE(direct.ok());
  auto fresh = Instantiation::Build(*direct);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(session->instantiation().constraints.size(),
            fresh->constraints.size());
  EXPECT_EQ(session->cnf().num_clauses(), BuildCnf(*fresh).num_clauses());
}

TEST(ResolutionSessionTest, NewNonCfdValueStaysIncremental) {
  // A new value in B (the CFD's RHS attribute, not its LHS) only *adds*
  // competing-value rules — still append-only.
  auto session = ResolutionSession::Create(CfdSpec());
  ASSERT_TRUE(session.ok());
  const int vars_before = session->instantiation().varmap.num_vars();

  PartialTemporalOrder ot;
  ot.new_tuples.push_back(Tuple({Value::Null(), Value::Str("b3")}));
  ot.orders.emplace_back(1, 0, 2);
  ot.orders.emplace_back(1, 1, 2);
  ASSERT_TRUE(session->ExtendWith(ot).ok());
  EXPECT_EQ(session->incremental_extensions(), 1);
  EXPECT_EQ(session->rebuilds(), 0);
  // The new value grew the variable universe append-only and counts as
  // an active-domain value.
  EXPECT_GT(session->instantiation().varmap.num_vars(), vars_before);
  EXPECT_EQ(session->instantiation().varmap.active_domain_size(1), 3);
  EXPECT_TRUE(session->CheckValidity().valid);

  // Deduction on the extended session agrees with a fresh encoding.
  auto direct = Extend(CfdSpec(), ot);
  ASSERT_TRUE(direct.ok());
  auto fresh = Instantiation::Build(*direct);
  ASSERT_TRUE(fresh.ok());
  const sat::Cnf fresh_cnf = BuildCnf(*fresh);
  const DeducedOrders od_fresh = DeduceOrder(*fresh, fresh_cnf);
  const DeducedOrders od_session = session->Deduce();
  EXPECT_EQ(od_fresh.CountPairs(), od_session.CountPairs());
}

TEST(ResolutionSessionTest, NaiveDeduceSharesSessionSolver) {
  ResolveOptions opts;
  opts.naive_deduce = true;
  auto session = ResolutionSession::Create(GeorgeSpec(), opts);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->CheckValidity().valid);
  const DeducedOrders od_shared = session->Deduce();

  auto inst = Instantiation::Build(GeorgeSpec());
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  const DeducedOrders od_fresh = NaiveDeduce(*inst, phi);
  EXPECT_EQ(od_shared.CountPairs(), od_fresh.CountPairs());
}

TEST(SessionScratchTest, ScratchBackedResolveMatchesOwnedAllocations) {
  // Cross-entity pooling: resolving a stream of entities through ONE
  // scratch must give bit-identical results to scratch-free sessions —
  // Solver::Reset restores the exact fresh state, only the allocations
  // stay warm.
  PersonOptions opts;
  opts.num_entities = 8;
  opts.min_tuples = 8;
  opts.max_tuples = 48;
  const Dataset ds = GeneratePerson(opts);

  SessionScratch scratch;
  for (size_t e = 0; e < ds.entities.size(); ++e) {
    ResolveOptions pooled_opts;
    pooled_opts.max_rounds = 3;
    pooled_opts.scratch = &scratch;
    ResolveOptions owned_opts = pooled_opts;
    owned_opts.scratch = nullptr;

    TruthOracle pooled_oracle(ds.entities[e].truth, /*answers_per_round=*/1);
    TruthOracle owned_oracle(ds.entities[e].truth, /*answers_per_round=*/1);
    auto pooled = Resolve(ds.MakeSpec(static_cast<int>(e)), &pooled_oracle,
                          pooled_opts);
    auto owned = Resolve(ds.MakeSpec(static_cast<int>(e)), &owned_oracle,
                         owned_opts);
    ASSERT_EQ(pooled.ok(), owned.ok());
    if (!pooled.ok()) continue;
    ExpectSameResult(*pooled, *owned,
                     "scratch entity " + std::to_string(e));
  }
  // Entity 2..N reused entity 1's solver instead of allocating.
  EXPECT_GE(scratch.solver_reuses(),
            static_cast<int64_t>(ds.entities.size()) - 1);
}

TEST(SessionScratchTest, RebuildPathRecyclesScratchObjects) {
  // The rebuild fallback (new value in a grounded CFD's LHS) must also
  // recycle the scratch's solver/CNF rather than allocating fresh ones,
  // and stay correct afterwards.
  ResolveOptions opts;
  SessionScratch scratch;
  opts.scratch = &scratch;
  auto session = ResolutionSession::Create(CfdSpec(), opts);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->CheckValidity().valid);

  PartialTemporalOrder ot;
  ot.new_tuples.push_back(Tuple({Value::Str("a3"), Value::Null()}));
  ot.orders.emplace_back(0, 0, 2);
  ot.orders.emplace_back(0, 1, 2);
  ASSERT_TRUE(session->ExtendWith(ot).ok());
  EXPECT_EQ(session->rebuilds(), 1);
  EXPECT_EQ(scratch.solver_reuses(), 1);  // the rebuild recycled, not alloc'd
  EXPECT_TRUE(session->CheckValidity().valid);

  auto direct = Extend(CfdSpec(), ot);
  ASSERT_TRUE(direct.ok());
  auto fresh = Instantiation::Build(*direct);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(session->cnf().num_clauses(), BuildCnf(*fresh).num_clauses());
}

TEST(ResolutionSessionTest, ValidityConflictsArePerCallDelta) {
  auto session = ResolutionSession::Create(GeorgeSpec());
  ASSERT_TRUE(session.ok());
  const ValidityResult first = session->CheckValidity();
  // A second check on the same solver must not accumulate the first
  // call's conflicts into its own count.
  const ValidityResult second = session->CheckValidity();
  EXPECT_TRUE(first.valid);
  EXPECT_TRUE(second.valid);
  EXPECT_GE(first.solver_conflicts, 0);
  EXPECT_LE(second.solver_conflicts, first.solver_conflicts + 1);
}

}  // namespace
}  // namespace ccr
