// Tests for the encode-once/solve-many pipeline (src/core/session.h):
// the session engine must be indistinguishable from a from-scratch
// per-round rebuild, across generators, multi-round oracle runs, the
// invalid-answer path, and the incremental/rebuild extension split.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "paper_fixture.h"
#include "src/core/session.h"
#include "src/data/career_generator.h"
#include "src/data/dataset.h"
#include "src/data/nba_generator.h"
#include "src/data/person_generator.h"

namespace ccr {
namespace {

using testing::GeorgeSpec;
using testing::PaperSchema;

void ExpectSameResult(const ResolveResult& a, const ResolveResult& b,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.rounds_used, b.rounds_used);
  ASSERT_EQ(a.true_values.size(), b.true_values.size());
  for (size_t i = 0; i < a.true_values.size(); ++i) {
    EXPECT_EQ(a.true_values[i], b.true_values[i]) << "attr " << i;
  }
  EXPECT_EQ(a.resolved, b.resolved);
  EXPECT_EQ(a.user_provided, b.user_provided);
  ASSERT_EQ(a.round_values.size(), b.round_values.size());
  for (size_t k = 0; k < a.round_values.size(); ++k) {
    for (size_t i = 0; i < a.round_values[k].size(); ++i) {
      EXPECT_EQ(a.round_values[k][i], b.round_values[k][i])
          << "round " << k << " attr " << i;
    }
    EXPECT_EQ(a.round_resolved[k], b.round_resolved[k]) << "round " << k;
  }
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t k = 0; k < a.trace.size(); ++k) {
    EXPECT_EQ(a.trace[k].round, b.trace[k].round);
    EXPECT_EQ(a.trace[k].resolved_attrs, b.trace[k].resolved_attrs);
  }
}

// With selector-guarded CFDs every session delta is append-only: the
// session engine must never rebuild, while the legacy engine rebuilds
// once per round by definition.
void ExpectSessionNeverRebuilds(const ResolveResult& session_result,
                                const ResolveResult& legacy_result) {
  for (const RoundTrace& t : session_result.trace) {
    EXPECT_EQ(t.num_rebuilds, 0) << "session round " << t.round;
  }
  for (const RoundTrace& t : legacy_result.trace) {
    EXPECT_EQ(t.num_rebuilds, 1) << "legacy round " << t.round;
  }
}

// Resolves every entity of `ds` through both engines and demands
// identical results. answers_per_round = 1 forces several interaction
// rounds, exercising repeated incremental extension.
void ExpectEquivalenceOnDataset(const Dataset& ds, int max_rounds,
                                int answers_per_round) {
  for (size_t e = 0; e < ds.entities.size(); ++e) {
    ResolveOptions session_opts;
    session_opts.max_rounds = max_rounds;
    session_opts.use_session = true;
    ResolveOptions legacy_opts = session_opts;
    legacy_opts.use_session = false;

    TruthOracle session_oracle(ds.entities[e].truth, answers_per_round);
    TruthOracle legacy_oracle(ds.entities[e].truth, answers_per_round);
    auto with_session =
        Resolve(ds.MakeSpec(static_cast<int>(e)), &session_oracle,
                session_opts);
    auto with_legacy = Resolve(ds.MakeSpec(static_cast<int>(e)),
                               &legacy_oracle, legacy_opts);
    ASSERT_EQ(with_session.ok(), with_legacy.ok());
    if (!with_session.ok()) continue;
    ExpectSameResult(*with_session, *with_legacy,
                     ds.name + " entity " + std::to_string(e));
    ExpectSessionNeverRebuilds(*with_session, *with_legacy);

    // No-oracle (fully automatic) pass as well.
    auto auto_session =
        Resolve(ds.MakeSpec(static_cast<int>(e)), nullptr, session_opts);
    auto auto_legacy =
        Resolve(ds.MakeSpec(static_cast<int>(e)), nullptr, legacy_opts);
    ASSERT_TRUE(auto_session.ok());
    ASSERT_TRUE(auto_legacy.ok());
    ExpectSameResult(*auto_session, *auto_legacy,
                     ds.name + " entity " + std::to_string(e) + " (auto)");
  }
}

TEST(SessionEquivalenceTest, NbaMultiRound) {
  NbaOptions opts;
  opts.num_entities = 12;
  opts.max_tuples = 60;
  ExpectEquivalenceOnDataset(GenerateNba(opts), /*max_rounds=*/3,
                             /*answers_per_round=*/1);
}

TEST(SessionEquivalenceTest, CareerMultiRound) {
  CareerOptions opts;
  opts.num_entities = 10;
  opts.max_tuples = 60;
  ExpectEquivalenceOnDataset(GenerateCareer(opts), /*max_rounds=*/3,
                             /*answers_per_round=*/1);
}

TEST(SessionEquivalenceTest, PersonMultiRound) {
  PersonOptions opts;
  opts.num_entities = 8;
  opts.min_tuples = 8;
  opts.max_tuples = 48;
  ExpectEquivalenceOnDataset(GeneratePerson(opts), /*max_rounds=*/3,
                             /*answers_per_round=*/1);
}

TEST(SessionEquivalenceTest, PaperExampleMultiAnswerRounds) {
  // The George example with generous answers resolves in one round; with
  // one answer per round it takes several — run both widths.
  const Schema s = PaperSchema();
  std::vector<Value> truth(s.size(), Value::Null());
  truth[s.IndexOf("status")] = Value::Str("retired");
  for (int per_round : {1, 100}) {
    ResolveOptions session_opts;
    session_opts.use_session = true;
    ResolveOptions legacy_opts = session_opts;
    legacy_opts.use_session = false;
    TruthOracle o1(truth, per_round), o2(truth, per_round);
    auto a = Resolve(GeorgeSpec(), &o1, session_opts);
    auto b = Resolve(GeorgeSpec(), &o2, legacy_opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameResult(*a, *b,
                     "george per_round=" + std::to_string(per_round));
  }
}

// Oracle answering its fixed script for *every* scripted attribute, even
// ones the suggestion did not ask for (users may volunteer values) — used
// to push the session into the invalid-answer branch.
class ScriptedOracle : public UserOracle {
 public:
  explicit ScriptedOracle(std::vector<Value> values)
      : values_(std::move(values)) {}

  std::vector<Answer> Provide(const Specification&, const Suggestion&,
                              const VarMap&) override {
    if (answered_) return {};
    answered_ = true;
    std::vector<Answer> out;
    for (size_t attr = 0; attr < values_.size(); ++attr) {
      if (!values_[attr].is_null()) {
        out.push_back({static_cast<int>(attr), values_[attr]});
      }
    }
    return out;
  }

 private:
  std::vector<Value> values_;
  bool answered_ = false;
};

// A two-attribute spec with a CFD A=a1 -> B=b1 and no currency orders.
Specification CfdSpec() {
  Schema schema = Schema::Make({"A", "B"}).value();
  EntityInstance e(schema, "cfd-entity");
  EXPECT_TRUE(
      e.Add(Tuple({Value::Str("a1"), Value::Str("b1")})).ok());
  EXPECT_TRUE(
      e.Add(Tuple({Value::Str("a2"), Value::Str("b2")})).ok());
  Specification se;
  se.temporal = TemporalInstance(std::move(e));
  se.gamma.emplace_back(
      std::vector<std::pair<int, Value>>{{0, Value::Str("a1")}}, 1,
      Value::Str("b1"));
  return se;
}

TEST(SessionEquivalenceTest, InvalidAnswerPathMatchesLegacy) {
  // Answering A=a1 and B=b2 contradicts the CFD (a1 current forces b1
  // current): the extended specification is invalid and both engines must
  // report the same partial result.
  std::vector<Value> script = {Value::Str("a1"), Value::Str("b2")};
  ResolveOptions session_opts;
  session_opts.use_session = true;
  ResolveOptions legacy_opts = session_opts;
  legacy_opts.use_session = false;

  ScriptedOracle o1(script), o2(script);
  auto a = Resolve(CfdSpec(), &o1, session_opts);
  auto b = Resolve(CfdSpec(), &o2, legacy_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Round 0 is valid-but-incomplete; the answers make round 1 invalid.
  EXPECT_FALSE(a->complete);
  EXPECT_TRUE(a->valid);
  ASSERT_EQ(a->trace.size(), 2u);
  ExpectSameResult(*a, *b, "invalid answer");
}

TEST(ResolutionSessionTest, InDomainAnswerTakesIncrementalPath) {
  auto session = ResolutionSession::Create(CfdSpec());
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->CheckValidity().valid);

  // t_o answers A = a2 (already in the domain): append-only extension.
  PartialTemporalOrder ot;
  ot.new_tuples.push_back(Tuple({Value::Str("a2"), Value::Null()}));
  ot.orders.emplace_back(0, 0, 2);
  ot.orders.emplace_back(0, 1, 2);
  ASSERT_TRUE(session->ExtendWith(ot).ok());
  EXPECT_EQ(session->incremental_extensions(), 1);
  EXPECT_EQ(session->rebuilds(), 0);
  EXPECT_TRUE(session->CheckValidity().valid);
}

TEST(ResolutionSessionTest, NewCfdLhsValueExtendsIncrementally) {
  auto session = ResolutionSession::Create(CfdSpec());
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->CheckValidity().valid);

  // t_o carries a *new* value for A — the LHS attribute of the grounded
  // CFD — which strengthens the CFD's rule bodies. The guarded grounding
  // retires the old rule version's guard and appends re-grounded guarded
  // rules: append-only, no rebuild.
  PartialTemporalOrder ot;
  ot.new_tuples.push_back(Tuple({Value::Str("a3"), Value::Null()}));
  ot.orders.emplace_back(0, 0, 2);
  ot.orders.emplace_back(0, 1, 2);
  ASSERT_TRUE(session->ExtendWith(ot).ok());
  EXPECT_EQ(session->incremental_extensions(), 1);
  EXPECT_EQ(session->rebuilds(), 0);
  EXPECT_TRUE(session->CheckValidity().valid);

  // The extended session deduces exactly what a from-scratch grounding of
  // the extended specification deduces.
  auto direct = Extend(CfdSpec(), ot);
  ASSERT_TRUE(direct.ok());
  auto fresh = Instantiation::Build(*direct);
  ASSERT_TRUE(fresh.ok());
  const sat::Cnf fresh_cnf = BuildCnf(*fresh);
  EXPECT_TRUE(IsValidCnf(fresh_cnf).valid);
  const DeducedOrders od_fresh = DeduceOrder(*fresh, fresh_cnf);
  const DeducedOrders od_session = session->Deduce();
  EXPECT_EQ(od_fresh.CountPairs(), od_session.CountPairs());
  const std::vector<int> true_fresh =
      ExtractTrueValueIndices(fresh->varmap, od_fresh);
  const std::vector<int> true_sess = ExtractTrueValueIndices(
      session->instantiation().varmap, od_session);
  ASSERT_EQ(true_fresh.size(), true_sess.size());
  for (size_t a = 0; a < true_fresh.size(); ++a) {
    const Value vf = true_fresh[a] >= 0
                         ? fresh->varmap.domain(static_cast<int>(a))
                               [true_fresh[a]]
                         : Value::Null();
    const Value vs =
        true_sess[a] >= 0
            ? session->instantiation().varmap.domain(
                  static_cast<int>(a))[true_sess[a]]
            : Value::Null();
    EXPECT_EQ(vf, vs) << "attr " << a;
  }

  // A second LHS extension retires the re-grounded version again and
  // stays correct — the guard chain is unbounded.
  PartialTemporalOrder ot2;
  ot2.new_tuples.push_back(Tuple({Value::Str("a4"), Value::Null()}));
  for (int t = 0; t < 3; ++t) ot2.orders.emplace_back(0, t, 3);
  ASSERT_TRUE(session->ExtendWith(ot2).ok());
  EXPECT_EQ(session->incremental_extensions(), 2);
  EXPECT_EQ(session->rebuilds(), 0);
  EXPECT_TRUE(session->CheckValidity().valid);
}

TEST(ResolutionSessionTest, NewNonCfdValueStaysIncremental) {
  // A new value in B (the CFD's RHS attribute, not its LHS) only *adds*
  // competing-value rules — still append-only.
  auto session = ResolutionSession::Create(CfdSpec());
  ASSERT_TRUE(session.ok());
  const int vars_before = session->instantiation().varmap.num_vars();

  PartialTemporalOrder ot;
  ot.new_tuples.push_back(Tuple({Value::Null(), Value::Str("b3")}));
  ot.orders.emplace_back(1, 0, 2);
  ot.orders.emplace_back(1, 1, 2);
  ASSERT_TRUE(session->ExtendWith(ot).ok());
  EXPECT_EQ(session->incremental_extensions(), 1);
  EXPECT_EQ(session->rebuilds(), 0);
  // The new value grew the variable universe append-only and counts as
  // an active-domain value.
  EXPECT_GT(session->instantiation().varmap.num_vars(), vars_before);
  EXPECT_EQ(session->instantiation().varmap.active_domain_size(1), 3);
  EXPECT_TRUE(session->CheckValidity().valid);

  // Deduction on the extended session agrees with a fresh encoding.
  auto direct = Extend(CfdSpec(), ot);
  ASSERT_TRUE(direct.ok());
  auto fresh = Instantiation::Build(*direct);
  ASSERT_TRUE(fresh.ok());
  const sat::Cnf fresh_cnf = BuildCnf(*fresh);
  const DeducedOrders od_fresh = DeduceOrder(*fresh, fresh_cnf);
  const DeducedOrders od_session = session->Deduce();
  EXPECT_EQ(od_fresh.CountPairs(), od_session.CountPairs());
}

TEST(ResolutionSessionTest, NaiveDeduceSharesSessionSolver) {
  ResolveOptions opts;
  opts.naive_deduce = true;
  auto session = ResolutionSession::Create(GeorgeSpec(), opts);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->CheckValidity().valid);
  const DeducedOrders od_shared = session->Deduce();

  auto inst = Instantiation::Build(GeorgeSpec());
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  const DeducedOrders od_fresh = NaiveDeduce(*inst, phi);
  EXPECT_EQ(od_shared.CountPairs(), od_fresh.CountPairs());
}

TEST(SessionScratchTest, ScratchBackedResolveMatchesOwnedAllocations) {
  // Cross-entity pooling: resolving a stream of entities through ONE
  // scratch must give bit-identical results to scratch-free sessions —
  // Solver::Reset restores the exact fresh state, only the allocations
  // stay warm.
  PersonOptions opts;
  opts.num_entities = 8;
  opts.min_tuples = 8;
  opts.max_tuples = 48;
  const Dataset ds = GeneratePerson(opts);

  SessionScratch scratch;
  for (size_t e = 0; e < ds.entities.size(); ++e) {
    ResolveOptions pooled_opts;
    pooled_opts.max_rounds = 3;
    pooled_opts.scratch = &scratch;
    ResolveOptions owned_opts = pooled_opts;
    owned_opts.scratch = nullptr;

    TruthOracle pooled_oracle(ds.entities[e].truth, /*answers_per_round=*/1);
    TruthOracle owned_oracle(ds.entities[e].truth, /*answers_per_round=*/1);
    auto pooled = Resolve(ds.MakeSpec(static_cast<int>(e)), &pooled_oracle,
                          pooled_opts);
    auto owned = Resolve(ds.MakeSpec(static_cast<int>(e)), &owned_oracle,
                         owned_opts);
    ASSERT_EQ(pooled.ok(), owned.ok());
    if (!pooled.ok()) continue;
    ExpectSameResult(*pooled, *owned,
                     "scratch entity " + std::to_string(e));
  }
  // Entity 2..N reused entity 1's solver instead of allocating.
  EXPECT_GE(scratch.solver_reuses(),
            static_cast<int64_t>(ds.entities.size()) - 1);
}

TEST(SessionScratchTest, LhsGrowthWithScratchStaysIncremental) {
  // The formerly rebuild-only delta (new value in a grounded CFD's LHS)
  // must extend in place on a scratch-backed session — the scratch solver
  // is acquired exactly once at Create, never re-acquired mid-session —
  // and the next session through the same scratch recycles it warm.
  ResolveOptions opts;
  SessionScratch scratch;
  opts.scratch = &scratch;
  {
    auto session = ResolutionSession::Create(CfdSpec(), opts);
    ASSERT_TRUE(session.ok());
    EXPECT_TRUE(session->CheckValidity().valid);

    PartialTemporalOrder ot;
    ot.new_tuples.push_back(Tuple({Value::Str("a3"), Value::Null()}));
    ot.orders.emplace_back(0, 0, 2);
    ot.orders.emplace_back(0, 1, 2);
    ASSERT_TRUE(session->ExtendWith(ot).ok());
    EXPECT_EQ(session->rebuilds(), 0);
    EXPECT_EQ(session->incremental_extensions(), 1);
    EXPECT_EQ(scratch.solver_reuses(), 0);  // one acquisition, at Create
    EXPECT_TRUE(session->CheckValidity().valid);
  }
  // Entity 2 through the same scratch: warm solver, identical behavior.
  auto session2 = ResolutionSession::Create(CfdSpec(), opts);
  ASSERT_TRUE(session2.ok());
  EXPECT_EQ(scratch.solver_reuses(), 1);
  EXPECT_TRUE(session2->CheckValidity().valid);
}

// --- Suggest bit-identity across engines --------------------------------
//
// The session computes GetSug as assumption-based incremental MaxSAT on
// its persistent solver; the reference path re-grounds, re-encodes and
// runs the one-shot Suggest on a fresh solver. Canonical MaxSAT extraction
// makes the two agree exactly. Domains may be *permuted* between an
// extended VarMap and a rebuilt one (appended values land after CFD
// constants), so candidate sets are compared as value sets, not index
// lists.

std::vector<Value> MappedSorted(const VarMap& vm, int attr,
                                const std::vector<int>& indices) {
  std::vector<Value> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(vm.domain(attr)[i]);
  std::sort(out.begin(), out.end(),
            [](const Value& x, const Value& y) { return x.Compare(y) < 0; });
  return out;
}

void ExpectSameSuggestion(const Suggestion& a, const VarMap& va,
                          const Suggestion& b, const VarMap& vb,
                          const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(a.attrs, b.attrs);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(MappedSorted(va, a.attrs[i], a.candidates[i]),
              MappedSorted(vb, b.attrs[i], b.candidates[i]))
        << "candidates for attr " << a.attrs[i];
  }
  EXPECT_EQ(a.derivable_attrs, b.derivable_attrs);
  ASSERT_EQ(a.clique_rules.size(), b.clique_rules.size());
  for (size_t i = 0; i < a.clique_rules.size(); ++i) {
    const DerivationRule& ra = a.clique_rules[i];
    const DerivationRule& rb = b.clique_rules[i];
    EXPECT_EQ(ra.rhs_attr, rb.rhs_attr);
    EXPECT_EQ(va.domain(ra.rhs_attr)[ra.rhs_value],
              vb.domain(rb.rhs_attr)[rb.rhs_value]);
    ASSERT_EQ(ra.lhs.size(), rb.lhs.size());
    for (size_t j = 0; j < ra.lhs.size(); ++j) {
      EXPECT_EQ(ra.lhs[j].first, rb.lhs[j].first);
      EXPECT_EQ(va.domain(ra.lhs[j].first)[ra.lhs[j].second],
                vb.domain(rb.lhs[j].first)[rb.lhs[j].second]);
    }
  }
}

void ExpectSuggestEquivalenceOnDataset(const Dataset& ds, int max_rounds) {
  for (size_t e = 0; e < ds.entities.size(); ++e) {
    auto session = ResolutionSession::Create(ds.MakeSpec(static_cast<int>(e)));
    ASSERT_TRUE(session.ok());
    Specification legacy_spec = ds.MakeSpec(static_cast<int>(e));
    const std::vector<Value>& truth = ds.entities[e].truth;
    const int n_attrs = legacy_spec.schema().size();
    for (int round = 0; round <= max_rounds; ++round) {
      if (!session->CheckValidity().valid) break;

      const DeducedOrders od_s = session->Deduce();
      const VarMap& vm_s = session->instantiation().varmap;
      const Suggestion sug_s = session->MakeSuggestion(
          CandidateValues(vm_s, od_s), ExtractTrueValueIndices(vm_s, od_s));

      auto fresh = Instantiation::Build(legacy_spec);
      ASSERT_TRUE(fresh.ok());
      const sat::Cnf phi = BuildCnf(*fresh);
      const DeducedOrders od_f = DeduceOrder(*fresh, phi);
      const Suggestion sug_f =
          Suggest(*fresh, phi, CandidateValues(fresh->varmap, od_f),
                  ExtractTrueValueIndices(fresh->varmap, od_f));

      ExpectSameSuggestion(sug_s, vm_s, sug_f, fresh->varmap,
                           ds.name + " entity " + std::to_string(e) +
                               " round " + std::to_string(round));

      // Answer the first suggested attribute with a known ground truth,
      // as a dominating user tuple t_o; extend both paths identically.
      int pick = -1;
      for (int a : sug_f.attrs) {
        if (!truth[a].is_null()) {
          pick = a;
          break;
        }
      }
      if (pick < 0) break;
      PartialTemporalOrder ot;
      Tuple to(std::vector<Value>(n_attrs, Value::Null()));
      to[pick] = truth[pick];
      const int to_index = legacy_spec.instance().size();
      ot.new_tuples.push_back(std::move(to));
      for (int t = 0; t < to_index; ++t) {
        ot.orders.emplace_back(pick, t, to_index);
      }
      ASSERT_TRUE(session->ExtendWith(ot).ok());
      auto extended = Extend(legacy_spec, ot);
      ASSERT_TRUE(extended.ok());
      legacy_spec = *std::move(extended);
    }
    EXPECT_EQ(session->rebuilds(), 0);
  }
}

TEST(SessionSuggestEquivalenceTest, NbaMultiRound) {
  NbaOptions opts;
  opts.num_entities = 6;
  opts.max_tuples = 40;
  ExpectSuggestEquivalenceOnDataset(GenerateNba(opts), /*max_rounds=*/3);
}

TEST(SessionSuggestEquivalenceTest, CareerMultiRound) {
  CareerOptions opts;
  opts.num_entities = 5;
  opts.max_tuples = 40;
  ExpectSuggestEquivalenceOnDataset(GenerateCareer(opts), /*max_rounds=*/3);
}

TEST(SessionSuggestEquivalenceTest, PersonMultiRound) {
  PersonOptions opts;
  opts.num_entities = 5;
  opts.min_tuples = 8;
  opts.max_tuples = 32;
  ExpectSuggestEquivalenceOnDataset(GeneratePerson(opts), /*max_rounds=*/3);
}

TEST(ResolutionSessionTest, AssumptionSolvesAreCounted) {
  // Guarded CFD sessions answer validity (and GetSug) under assumptions;
  // the counter must reflect that so RoundTrace attribution works.
  auto session = ResolutionSession::Create(CfdSpec());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->assumption_solves(), 0);
  EXPECT_TRUE(session->CheckValidity().valid);
  EXPECT_EQ(session->assumption_solves(), 1);  // guard-conditioned solve
}

TEST(ResolutionSessionTest, ValidityConflictsArePerCallDelta) {
  auto session = ResolutionSession::Create(GeorgeSpec());
  ASSERT_TRUE(session.ok());
  const ValidityResult first = session->CheckValidity();
  // A second check on the same solver must not accumulate the first
  // call's conflicts into its own count.
  const ValidityResult second = session->CheckValidity();
  EXPECT_TRUE(first.valid);
  EXPECT_TRUE(second.valid);
  EXPECT_GE(first.solver_conflicts, 0);
  EXPECT_LE(second.solver_conflicts, first.solver_conflicts + 1);
}

}  // namespace
}  // namespace ccr
