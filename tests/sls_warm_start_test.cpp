// Tests for the stochastic-local-search warm starts: the SLS-on/off
// ablation (byte-identical ExperimentResults on all three corpora — SLS
// may only change time-to-verdict, never verdicts), same-seed WalkSAT
// determinism for both the CNF form and the solver form, and the
// IncrementalMaxSat upper-bound probe (probe-guided downward search must
// agree field-by-field with the plain linear climb on every instance,
// including repeat calls on one persistent solver).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/ccr.h"
#include "src/common/rng.h"
#include "src/eval/result_io.h"
#include "src/maxsat/walksat.h"

namespace ccr {
namespace {

using maxsat::IncrementalMaxSat;
using maxsat::MaxSatResult;
using maxsat::RunWalkSat;
using maxsat::WalkSatOptions;
using maxsat::WalkSatResult;
using maxsat::WalkSatScratch;
using sat::Lit;
using sat::SolveResult;
using sat::Solver;
using sat::SolverOptions;
using sat::Var;

Dataset AblationCorpus(const std::string& kind) {
  if (kind == "nba") {
    NbaOptions o;
    o.num_entities = 20;
    o.min_tuples = 3;
    o.max_tuples = 10;
    o.seed = 0xAB1;
    return GenerateNba(o);
  }
  if (kind == "career") {
    CareerOptions o;
    o.num_entities = 20;
    o.min_tuples = 3;
    o.max_tuples = 10;
    o.seed = 0xAB2;
    return GenerateCareer(o);
  }
  PersonOptions o;
  o.num_entities = 20;
  o.min_tuples = 4;
  o.max_tuples = 12;
  o.seed = 0xAB3;
  return GeneratePerson(o);
}

std::string ResolveCorpusToJson(const Dataset& ds,
                                const SolverOptions& solver) {
  ExperimentOptions eopts;
  eopts.max_rounds = 3;
  eopts.answers_per_round = 1;
  eopts.resolve.solver = solver;
  const ExperimentResult r = RunExperiment(ds, eopts);
  ResultJsonOptions jopts;
  jopts.include_timings = false;
  return ExperimentResultToJson(r, jopts);
}

// The determinism contract of the tentpole: turning the local-search
// seeding and the MaxSAT probing off — together or separately — must not
// move a single byte of any resolution on any corpus.
TEST(SlsAblationEquivalenceTest, SlsOnOffResolvesIdentically) {
  for (const std::string kind : {"person", "nba", "career"}) {
    const Dataset ds = AblationCorpus(kind);
    const std::string baseline = ResolveCorpusToJson(ds, SolverOptions{});
    SolverOptions off;
    off.use_sls_seeding = false;
    off.use_sls_probing = false;
    EXPECT_EQ(ResolveCorpusToJson(ds, off), baseline) << kind << " sls off";
    SolverOptions no_seed;
    no_seed.use_sls_seeding = false;
    EXPECT_EQ(ResolveCorpusToJson(ds, no_seed), baseline)
        << kind << " seeding off, probing on";
    SolverOptions no_probe;
    no_probe.use_sls_probing = false;
    EXPECT_EQ(ResolveCorpusToJson(ds, no_probe), baseline)
        << kind << " probing off, seeding on";
  }
}

sat::Cnf RandomCnf(Rng* rng, int n_vars, int n_clauses) {
  sat::Cnf cnf;
  cnf.EnsureVars(n_vars);
  for (int c = 0; c < n_clauses; ++c) {
    const int len = 1 + static_cast<int>(rng->Below(3));
    std::vector<Lit> clause;
    for (int k = 0; k < len; ++k) {
      clause.push_back(
          Lit(static_cast<Var>(rng->Below(n_vars)), rng->Chance(0.5)));
    }
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  return cnf;
}

// Random CNF with a planted satisfying assignment: every clause gets one
// literal made true under the plant, so the hard part is SAT by
// construction and the MaxSAT bound search actually runs.
sat::Cnf PlantedCnf(Rng* rng, int n_vars, int n_clauses,
                    std::vector<bool>* plant_out) {
  std::vector<bool> plant(n_vars);
  for (int v = 0; v < n_vars; ++v) plant[v] = rng->Chance(0.5);
  sat::Cnf cnf;
  cnf.EnsureVars(n_vars);
  for (int c = 0; c < n_clauses; ++c) {
    const int len = 2 + static_cast<int>(rng->Below(2));
    std::vector<Lit> clause;
    for (int k = 0; k < len; ++k) {
      const Var v = static_cast<Var>(rng->Below(n_vars));
      // k == 0: the planted literal, true under `plant`; rest random.
      clause.push_back(Lit(v, k == 0 ? !plant[v] : rng->Chance(0.5)));
    }
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  if (plant_out != nullptr) *plant_out = std::move(plant);
  return cnf;
}

bool SameWalkSatResult(const WalkSatResult& a, const WalkSatResult& b) {
  return a.satisfied == b.satisfied && a.best_unsat == b.best_unsat &&
         a.model == b.model;
}

// Same seed, same result — with or without pooled scratch, and across
// repeated runs. The RNG is keyed off options.seed alone; no wall-clock
// or global state may leak into the search.
TEST(WalkSatDeterminismTest, SameSeedIsBitIdenticalOnCnf) {
  Rng rng(0x5EED'D00D);
  WalkSatScratch pooled;
  for (int round = 0; round < 20; ++round) {
    const sat::Cnf cnf = RandomCnf(&rng, 6 + round % 9, 10 + 3 * round);
    WalkSatOptions opts;
    opts.max_flips = 2000;
    opts.tries = 3;
    opts.seed = 0xABCD + round;
    const auto fresh1 = RunWalkSat(cnf, opts);
    const auto fresh2 = RunWalkSat(cnf, opts);
    const auto with_scratch = RunWalkSat(cnf, opts, &pooled);
    ASSERT_TRUE(fresh1.ok() && fresh2.ok() && with_scratch.ok());
    EXPECT_TRUE(SameWalkSatResult(*fresh1, *fresh2)) << "round " << round;
    EXPECT_TRUE(SameWalkSatResult(*fresh1, *with_scratch))
        << "round " << round << ": pooled scratch changed the result";
  }
}

TEST(WalkSatDeterminismTest, SameSeedIsBitIdenticalOnSolver) {
  Rng rng(0x5EED'CDCE);
  for (int round = 0; round < 20; ++round) {
    const sat::Cnf cnf = RandomCnf(&rng, 6 + round % 9, 10 + 3 * round);
    WalkSatOptions opts;
    opts.max_flips = 2000;
    opts.tries = 3;
    opts.seed = 0xBEEF + round;
    Solver s1, s2;
    s1.AddCnf(cnf);
    s2.AddCnf(cnf);
    const auto r1 = RunWalkSat(&s1, opts);
    const auto r2 = RunWalkSat(&s2, opts);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_TRUE(SameWalkSatResult(*r1, *r2)) << "round " << round;
    // A satisfying SLS assignment is a genuine model of the formula the
    // solver holds: the follow-up Solve must agree it is satisfiable.
    if (r1->satisfied) {
      EXPECT_EQ(s1.Solve(), SolveResult::kSat) << "round " << round;
    }
  }
}

// The fields IncrementalMaxSat guarantees are a pure function of the
// conditioned formula: the optimum and the canonical kept set. The raw
// model is only unique where the pinned selectors/bound force it — like
// every other solver heuristic, the probe may legitimately surface a
// different witness for the same kept set, and no caller reads more.
bool SameMaxSatResult(const MaxSatResult& a, const MaxSatResult& b) {
  return a.hard_satisfiable == b.hard_satisfiable &&
         a.num_satisfied == b.num_satisfied &&
         a.soft_satisfied == b.soft_satisfied;
}

// Every soft reported satisfied must actually hold under the model.
bool ModelMatchesReport(const MaxSatResult& r,
                        const std::vector<std::vector<Lit>>& soft) {
  if (!r.hard_satisfiable) return true;
  for (size_t i = 0; i < soft.size(); ++i) {
    bool holds = false;
    for (Lit l : soft[i]) {
      if (r.model[l.var()] != l.negated()) {
        holds = true;
        break;
      }
    }
    if (holds != r.soft_satisfied[i]) return false;
  }
  return true;
}

// The probe gate of the tentpole: IncrementalMaxSat with the SLS
// upper-bound probe on must agree field-by-field with the plain linear
// climb — optimum, kept set, and model — on random soft sets over a
// shared hard formula, served back-to-back by one persistent solver per
// configuration (the session usage pattern).
TEST(IncrementalMaxSatProbeTest, ProbeMatchesClimbOverSixtySoftSets) {
  Rng rng(0x12345);
  SolverOptions probe_on;  // defaults: probing on
  SolverOptions probe_off;
  probe_off.use_sls_probing = false;

  // One persistent solver per configuration, both fed the same hard
  // formula once; all 60 soft sets run as repeat calls on those two
  // solvers — scoped aux vars must leave no cross-call residue.
  const int n_vars = 12;
  const sat::Cnf hard = PlantedCnf(&rng, n_vars, 18, nullptr);
  Solver with_probe(probe_on), without_probe(probe_off);
  with_probe.AddCnf(hard);
  without_probe.AddCnf(hard);
  IncrementalMaxSat m_probe(&with_probe), m_climb(&without_probe);

  int nonzero_optima = 0;
  for (int round = 0; round < 60; ++round) {
    const int n_soft = 1 + static_cast<int>(rng.Below(8));
    std::vector<std::vector<Lit>> soft;
    for (int i = 0; i < n_soft; ++i) {
      const int len = 1 + static_cast<int>(rng.Below(2));
      std::vector<Lit> clause;
      for (int k = 0; k < len; ++k) {
        clause.push_back(
            Lit(static_cast<Var>(rng.Below(n_vars)), rng.Chance(0.5)));
      }
      soft.push_back(std::move(clause));
    }
    const MaxSatResult a = m_probe.Solve(soft);
    const MaxSatResult b = m_climb.Solve(soft);
    EXPECT_TRUE(SameMaxSatResult(a, b)) << "round " << round;
    EXPECT_TRUE(ModelMatchesReport(a, soft)) << "round " << round;
    EXPECT_TRUE(ModelMatchesReport(b, soft)) << "round " << round;
    if (a.hard_satisfiable && a.num_satisfied < n_soft) ++nonzero_optima;
  }
  // The family must actually exercise the bound search (instances where
  // some softs are dropped), not just the k = 0 fast path.
  EXPECT_GT(nonzero_optima, 5);
  // The probing solver really probed.
  EXPECT_GT(with_probe.stats().sls_probes, 0);
  EXPECT_EQ(without_probe.stats().sls_probes, 0);
}

// Probing composes with extra assumptions (the session passes its guard
// literals): equivalence must hold under assumption-conditioned hard
// formulas too, including assumption sets that make the hard part UNSAT.
TEST(IncrementalMaxSatProbeTest, ProbeMatchesClimbUnderAssumptions) {
  Rng rng(0x67890);
  SolverOptions probe_off;
  probe_off.use_sls_probing = false;
  const int n_vars = 10;
  const sat::Cnf hard = PlantedCnf(&rng, n_vars, 12, nullptr);
  Solver with_probe, without_probe(probe_off);
  with_probe.AddCnf(hard);
  without_probe.AddCnf(hard);
  IncrementalMaxSat m_probe(&with_probe), m_climb(&without_probe);
  for (int round = 0; round < 20; ++round) {
    std::vector<Lit> assume;
    const int n_assume = static_cast<int>(rng.Below(4));
    for (int k = 0; k < n_assume; ++k) {
      assume.push_back(
          Lit(static_cast<Var>(rng.Below(n_vars)), rng.Chance(0.5)));
    }
    std::vector<std::vector<Lit>> soft;
    const int n_soft = 1 + static_cast<int>(rng.Below(6));
    for (int i = 0; i < n_soft; ++i) {
      soft.push_back({Lit(static_cast<Var>(rng.Below(n_vars)),
                          rng.Chance(0.5))});
    }
    const MaxSatResult a = m_probe.Solve(
        soft, std::span<const Lit>(assume.data(), assume.size()));
    const MaxSatResult b = m_climb.Solve(
        soft, std::span<const Lit>(assume.data(), assume.size()));
    EXPECT_TRUE(SameMaxSatResult(a, b)) << "round " << round;
    EXPECT_TRUE(ModelMatchesReport(a, soft)) << "round " << round;
  }
}

}  // namespace
}  // namespace ccr
