// Tests for session snapshots (src/service/snapshot.h) and the replay
// runtime (src/service/session_runtime.h): tagged values and full
// snapshots round-trip byte-identically, malformed documents are rejected
// with positioned errors, and — the gate the serving layer stands on — a
// session evicted to JSON and rehydrated by replay produces byte-identical
// round verdicts and a byte-identical ExperimentResult compared to the
// session that never left memory.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/common/json.h"
#include "src/core/resolver.h"
#include "src/core/session.h"
#include "src/data/person_generator.h"
#include "src/eval/metrics.h"
#include "src/eval/result_io.h"
#include "src/service/session_runtime.h"
#include "src/service/snapshot.h"

namespace ccr {
namespace service {
namespace {

Dataset SmallPersonCorpus(int entities = 4) {
  PersonOptions opts;
  opts.num_entities = entities;
  opts.min_tuples = 6;
  opts.max_tuples = 16;
  opts.seed = 7;
  return GeneratePerson(opts);
}

std::string ValueToJson(const Value& v) {
  json::Writer w(0);
  WriteValue(v, &w);
  return std::move(w).Take();
}

Result<Value> ValueFromJson(const std::string& text) {
  json::Reader rd(text, "value");
  Value out;
  CCR_RETURN_NOT_OK(ParseValue(&rd, &out));
  return out;
}

TEST(SnapshotValueTest, TaggedValuesRoundTrip) {
  const std::vector<Value> cases = {
      Value::Null(),
      Value::Int(0),
      Value::Int(-17),
      // Beyond 2^53: must survive without a double round trip.
      Value::Int((int64_t{1} << 60) + 3),
      Value::Real(0.1),
      Value::Real(-1e300),
      Value::Str(""),
      Value::Str("plain"),
      Value::Str("quote \" backslash \\ newline \n tab \t"),
      Value::Str(std::string("nul \0 byte", 10)),
      Value::Str("high bytes \xc3\xa9\xf0\x9f\x8e\x89"),
  };
  for (const Value& v : cases) {
    const std::string text = ValueToJson(v);
    auto back = ValueFromJson(text);
    ASSERT_TRUE(back.ok()) << text << ": " << back.status().ToString();
    EXPECT_EQ(v.type(), back.value().type()) << text;
    EXPECT_EQ(v, back.value()) << text;
    // Re-serialization is byte-identical (the writer is canonical).
    EXPECT_EQ(text, ValueToJson(back.value()));
  }
}

TEST(SnapshotValueTest, RejectsMalformedValues) {
  for (const char* bad : {
           "{}",                        // no tag
           "{\"i\": 1, \"d\": 2.0}",    // two tags
           "{\"x\": 1}",                // unknown tag
           "{\"i\": 1.5}",              // fractional int
           "{\"s\": unquoted}",         // bad string
           "3",                         // untagged scalar
       }) {
    EXPECT_FALSE(ValueFromJson(bad).ok()) << bad;
  }
}

SessionSnapshot MakeSnapshot(const Dataset& ds, int entity) {
  SessionSnapshot snap;
  snap.spec = ds.MakeSpec(entity);
  return snap;
}

TEST(SnapshotJsonTest, SnapshotRoundTripsByteIdentically) {
  const Dataset ds = SmallPersonCorpus();
  SessionSnapshot snap = MakeSnapshot(ds, 0);
  // Append a representative op log: one round, one answer delta.
  snap.ops.push_back(SessionOp{SessionOp::Kind::kRound, {}});
  auto delta = MakeAnswerDelta(
      snap.spec, {{0, Value::Str("answered")}, {2, Value::Int(5)}});
  ASSERT_TRUE(delta.ok());
  snap.ops.push_back(
      SessionOp{SessionOp::Kind::kExtend, std::move(delta).value()});

  const std::string text = SnapshotToJson(snap);
  auto back = SnapshotFromJson(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(text, SnapshotToJson(back.value()));

  const Specification& got = back.value().spec;
  EXPECT_EQ(got.instance().entity_id(), snap.spec.instance().entity_id());
  EXPECT_EQ(got.schema().names(), snap.spec.schema().names());
  EXPECT_EQ(got.instance().size(), snap.spec.instance().size());
  EXPECT_EQ(got.sigma.size(), snap.spec.sigma.size());
  EXPECT_EQ(got.gamma.size(), snap.spec.gamma.size());
  ASSERT_EQ(back.value().ops.size(), 2u);
  EXPECT_EQ(back.value().ops[0].kind, SessionOp::Kind::kRound);
  EXPECT_EQ(back.value().ops[1].kind, SessionOp::Kind::kExtend);
  EXPECT_EQ(back.value().ops[1].delta.new_tuples.size(), 1u);
  EXPECT_EQ(back.value().ops[1].delta.orders.size(),
            snap.ops[1].delta.orders.size());
}

TEST(SnapshotJsonTest, CompactAndIndentedFormsParseAlike) {
  const Dataset ds = SmallPersonCorpus();
  const SessionSnapshot snap = MakeSnapshot(ds, 1);
  auto from_compact = SnapshotFromJson(SnapshotToJson(snap, /*indent=*/0));
  auto from_indented = SnapshotFromJson(SnapshotToJson(snap, /*indent=*/2));
  ASSERT_TRUE(from_compact.ok());
  ASSERT_TRUE(from_indented.ok());
  EXPECT_EQ(SnapshotToJson(from_compact.value()),
            SnapshotToJson(from_indented.value()));
}

TEST(SnapshotJsonTest, RejectsMalformedSnapshots) {
  const Dataset ds = SmallPersonCorpus();
  const std::string good = SnapshotToJson(MakeSnapshot(ds, 0));
  ASSERT_TRUE(SnapshotFromJson(good).ok());

  struct Case {
    const char* label;
    std::string find;
    std::string replace;
  };
  const std::vector<Case> cases = {
      {"wrong schema name", "ccr.session_snapshot", "ccr.other"},
      {"wrong version", "\"schema_version\": 1", "\"schema_version\": 99"},
      {"unknown top field", "\"ops\"", "\"oops\""},
      {"unknown engine field", "\"naive_deduce\"", "\"naive_reduce\""},
      {"unknown preset", "\"modern\"", "\"quantum\""},
      {"unknown spec field", "\"tuples\"", "\"rows\""},
      {"truncated", "}\n", ""},
  };
  for (const Case& c : cases) {
    std::string bad = good;
    const size_t at = bad.find(c.find);
    ASSERT_NE(at, std::string::npos) << c.label;
    bad.replace(at, c.find.size(), c.replace);
    EXPECT_FALSE(SnapshotFromJson(bad).ok()) << c.label;
  }

  // Structural rejections that string surgery can't express.
  EXPECT_FALSE(SnapshotFromJson("").ok());
  EXPECT_FALSE(SnapshotFromJson("null").ok());
  EXPECT_FALSE(SnapshotFromJson("{\"schema\": \"ccr.session_snapshot\", "
                                "\"schema_version\": 1}")
                   .ok());  // missing spec
}

TEST(SnapshotJsonTest, RejectsOutOfRangeAttributeIndices) {
  const Dataset ds = SmallPersonCorpus();
  SessionSnapshot snap = MakeSnapshot(ds, 0);
  std::string text = SnapshotToJson(snap);
  // The spec has a fixed arity; an order triple naming attribute 999 must
  // be rejected at assembly, not crash at replay.
  const std::string find = "\"orders\": [";
  const size_t at = text.find(find);
  ASSERT_NE(at, std::string::npos);
  text.insert(at + find.size(), "[999, 0, 1]");
  const auto parsed = SnapshotFromJson(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("out of range"),
            std::string::npos)
      << parsed.status().ToString();
}

// --- replay equivalence ----------------------------------------------------

// Drives an interactive session op by op. At every prefix of the op log the
// session is "evicted" (serialized to JSON) and rehydrated by replay, and
// the next round's verdict bytes must match the live session's exactly.
TEST(SnapshotReplayTest, RehydratedSessionsMatchLiveVerdictsAtEveryPrefix) {
  const Dataset ds = SmallPersonCorpus();
  const int entity = 0;
  SessionSnapshot snap = MakeSnapshot(ds, entity);
  const std::vector<Value>& truth = ds.entities[entity].truth;

  auto options = MakeResolveOptions(snap.engine, nullptr);
  ASSERT_TRUE(options.ok());
  auto live = ResolutionSession::Create(snap.spec, options.value());
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  for (int step = 0; step < 4; ++step) {
    // Evict: the only state that survives is the serialized snapshot.
    const std::string frozen = SnapshotToJson(snap);
    auto thawed = SnapshotFromJson(frozen);
    ASSERT_TRUE(thawed.ok()) << thawed.status().ToString();
    auto replayed = ReplaySnapshot(thawed.value(), nullptr);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();

    const RoundOutcome out_live = RunSessionRound(&live.value());
    snap.ops.push_back(SessionOp{SessionOp::Kind::kRound, {}});
    const RoundOutcome out_replayed = RunSessionRound(&replayed.value());
    ASSERT_EQ(RoundOutcomeToJson(out_live), RoundOutcomeToJson(out_replayed))
        << "step " << step;
    EXPECT_EQ(live.value().rebuilds(), 0);
    EXPECT_EQ(replayed.value().rebuilds(), 0);

    if (!out_live.valid || out_live.complete || !out_live.has_suggestion) {
      break;
    }
    // Answer the first suggested attribute with non-null ground truth.
    std::vector<UserOracle::Answer> answers;
    for (const int attr : out_live.suggested_attrs) {
      if (!truth[attr].is_null()) {
        answers.push_back({attr, truth[attr]});
        break;
      }
    }
    if (answers.empty()) break;
    auto delta = MakeAnswerDelta(live.value().spec(), answers);
    ASSERT_TRUE(delta.ok());
    ASSERT_TRUE(live.value().ExtendWith(delta.value()).ok());
    snap.ops.push_back(SessionOp{SessionOp::Kind::kExtend, delta.value()});
  }
}

// The satellite gate in ExperimentResult terms: resolve one entity twice —
// once through the live framework loop (never evicted), once evicting and
// rehydrating before every round — score both against ground truth, and
// require byte-identical ExperimentResult JSON.
TEST(SnapshotReplayTest, EvictEveryRoundYieldsByteIdenticalExperimentResult) {
  const Dataset ds = SmallPersonCorpus();
  const int entity = 2;
  const std::vector<Value>& truth = ds.entities[entity].truth;
  const int n_attrs = ds.schema.size();
  const int max_rounds = 3;

  // Shared answer policy: every suggested attribute with non-null truth.
  auto answers_for = [&](const std::vector<int>& attrs) {
    std::vector<UserOracle::Answer> answers;
    for (const int attr : attrs) {
      if (!truth[attr].is_null()) answers.push_back({attr, truth[attr]});
    }
    return answers;
  };

  auto run = [&](bool evict_every_round) -> ExperimentResult {
    ExperimentResult result;
    result.entities = 1;
    SessionSnapshot snap = MakeSnapshot(ds, entity);
    auto options = MakeResolveOptions(snap.engine, nullptr);
    EXPECT_TRUE(options.ok());
    auto session = ResolutionSession::Create(snap.spec, options.value());
    EXPECT_TRUE(session.ok());
    std::vector<Value> values(n_attrs, Value::Null());
    std::vector<bool> resolved(n_attrs, false);
    for (int round = 0; round <= max_rounds; ++round) {
      if (evict_every_round) {
        auto thawed = SnapshotFromJson(SnapshotToJson(snap));
        EXPECT_TRUE(thawed.ok());
        auto replayed = ReplaySnapshot(thawed.value(), nullptr);
        EXPECT_TRUE(replayed.ok());
        session = std::move(replayed);
      }
      const RoundOutcome out = RunSessionRound(&session.value());
      snap.ops.push_back(SessionOp{SessionOp::Kind::kRound, {}});
      if (!out.valid) {
        result.invalid_entities = 1;
        break;
      }
      for (const auto& [attr, value] : out.resolved) {
        values[attr] = value;
        resolved[attr] = true;
      }
      result.accuracy_by_round.push_back(ScoreAssignment(
          ds.entities[entity].instance, truth, values, resolved));
      result.max_rounds_used = round;
      if (out.complete || !out.has_suggestion) break;
      const auto answers = answers_for(out.suggested_attrs);
      if (answers.empty()) break;
      auto delta = MakeAnswerDelta(session.value().spec(), answers);
      EXPECT_TRUE(delta.ok());
      EXPECT_TRUE(session.value().ExtendWith(delta.value()).ok());
      snap.ops.push_back(SessionOp{SessionOp::Kind::kExtend, delta.value()});
    }
    RecomputePctTrueByRound(&result);
    return result;
  };

  const ExperimentResult never_evicted = run(false);
  const ExperimentResult evicted = run(true);
  ResultJsonOptions json_opts;
  json_opts.include_timings = false;
  EXPECT_EQ(ExperimentResultToJson(never_evicted, json_opts),
            ExperimentResultToJson(evicted, json_opts));
  // The run must have made progress for the comparison to mean anything.
  EXPECT_FALSE(never_evicted.accuracy_by_round.empty());
}

TEST(SnapshotReplayTest, ReplayHonorsSolverPreset) {
  const Dataset ds = SmallPersonCorpus();
  SessionSnapshot snap = MakeSnapshot(ds, 3);
  for (const char* preset : {"modern", "legacy", "nogc", "sls", "nosls"}) {
    snap.engine.solver_preset = preset;
    auto replayed = ReplaySnapshot(snap, nullptr);
    ASSERT_TRUE(replayed.ok()) << preset;
    const RoundOutcome out = RunSessionRound(&replayed.value());
    // Verdict-only determinism: every preset produces the same verdict
    // bytes on the same spec.
    snap.engine.solver_preset = "modern";
    auto baseline = ReplaySnapshot(snap, nullptr);
    ASSERT_TRUE(baseline.ok());
    const RoundOutcome want = RunSessionRound(&baseline.value());
    EXPECT_EQ(RoundOutcomeToJson(want), RoundOutcomeToJson(out)) << preset;
  }
  EXPECT_FALSE(SolverOptionsForPreset("quantum").ok());
}

TEST(SnapshotReplayTest, ReplayReusesScratch) {
  const Dataset ds = SmallPersonCorpus();
  const SessionSnapshot snap = MakeSnapshot(ds, 0);
  SessionScratch scratch;
  {
    auto first = ReplaySnapshot(snap, &scratch);
    ASSERT_TRUE(first.ok());
    (void)RunSessionRound(&first.value());
  }
  auto second = ReplaySnapshot(snap, &scratch);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(scratch.solver_reuses(), 1);
}

}  // namespace
}  // namespace service
}  // namespace ccr
