// Long-lived session soak (the PR-6 memory-lifecycle contract): hundreds
// of oracle-answer rounds against ONE persistent session must
//   * keep the solver arena bounded — compacting GC holds the high-water
//     mark within 2x of the live clause words,
//   * change no result whatsoever — every validity verdict, every deduced
//     order, and the serialized ExperimentResult bytes are identical with
//     arena GC + BVE on, off, or maximally eager,
//   * keep the incremental model cache effective across relocations, and
//   * never fall back to a session rebuild.
//
// The churn mimics what a real resolution service produces (§III Remark
// (1)): each round appends a tuple carrying the ground-truth value of one
// attribute, dominating every prior tuple on that attribute. Truth
// answers stay consistent forever, while the unit cascades they trigger
// keep satisfying old clauses and retiring guards — dead arena words.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/session.h"
#include "src/data/dataset.h"
#include "src/data/person_generator.h"
#include "src/eval/experiment.h"
#include "src/eval/result_io.h"

namespace ccr {
namespace {

constexpr int kSoakRounds = 240;

// Generous additive slack on the 2x bound: a single round's worth of
// fresh clauses can land between the collector's trigger points.
constexpr size_t kArenaSlackWords = 4096;

Dataset SoakCorpus() {
  PersonOptions opts;
  opts.num_entities = 1;
  opts.min_tuples = 60;
  opts.max_tuples = 72;
  opts.seed = 90210;
  // Rich histories: plenty of attributes with genuine currency gaps, so
  // answer rounds keep doing real solver work.
  opts.p_status_gap = 0.55;
  opts.p_move_only = 0.70;
  return GeneratePerson(opts);
}

struct SoakOutcome {
  bool ok = false;
  bool arena_bound_held = true;   // per-round: arena <= 2*live + slack
  size_t peak_words = 0;          // solver high-water mark
  size_t final_arena_words = 0;   // footprint when the soak ended
  size_t max_live_words = 0;      // largest live snapshot we observed
  int64_t gc_runs = 0;
  int64_t reclaimed_words = 0;
  int64_t model_cache_hits = 0;
  int64_t bve_eliminated = 0;
  int rebuilds = 0;
  std::vector<bool> valid_by_round;
  // Closure of every Deduce() call, flattened as (call, attr, u, v).
  std::vector<std::tuple<int, int, int, int>> deduced;
};

SoakOutcome RunSoak(const Specification& spec,
                    const std::vector<Value>& truth, bool lifecycle_on,
                    bool eager) {
  SoakOutcome out;
  ResolveOptions opts;
  opts.naive_deduce = true;  // Lemma-6 churn on the persistent solver
  opts.solver.use_arena_gc = lifecycle_on;
  opts.solver.use_bve = lifecycle_on;
  // The answer-round dead fraction plateaus near ~20% of the arena, so
  // the production trigger (0.25) would coast at this scale; 0.10 makes
  // the collector genuinely run. `eager` compacts at every opportunity.
  if (lifecycle_on) opts.solver.gc_frac = eager ? 0.0 : 0.10;
  auto session = ResolutionSession::Create(spec, opts);
  if (!session.ok()) return out;

  const int n_attrs = static_cast<int>(spec.schema().size());
  int to_index = static_cast<int>(spec.instance().size());
  int deduce_calls = 0;
  for (int r = 0; r < kSoakRounds; ++r) {
    int a = r % n_attrs;
    for (int probe = 0; probe < n_attrs && truth[a].is_null(); ++probe) {
      a = (a + 1) % n_attrs;
    }
    if (truth[a].is_null()) return out;

    PartialTemporalOrder ot;
    Tuple to(std::vector<Value>(n_attrs, Value::Null()));
    to[a] = truth[a];
    ot.new_tuples.push_back(std::move(to));
    for (int t = 0; t < to_index; ++t) ot.orders.emplace_back(a, t, to_index);
    if (!session->ExtendWith(ot).ok()) return out;
    ++to_index;

    out.valid_by_round.push_back(session->CheckValidity().valid);
    if (r % 4 == 3 || r == kSoakRounds - 1) {
      const DeducedOrders d = session->Deduce();
      for (size_t at = 0; at < d.per_attr.size(); ++at) {
        const PartialOrder& po = d.per_attr[at];
        for (int u = 0; u < po.num_elements(); ++u) {
          for (int v = 0; v < po.num_elements(); ++v) {
            if (po.Less(u, v)) {
              out.deduced.emplace_back(deduce_calls, static_cast<int>(at),
                                       u, v);
            }
          }
        }
      }
      ++deduce_calls;
    }

    const sat::Solver& solver = session->solver();
    const size_t live = solver.arena_live_words();
    out.max_live_words = std::max(out.max_live_words, live);
    if (lifecycle_on &&
        solver.arena_words() > 2 * live + kArenaSlackWords) {
      out.arena_bound_held = false;
    }
  }

  const sat::Solver& solver = session->solver();
  out.peak_words = solver.arena_peak_words();
  out.final_arena_words = solver.arena_words();
  out.gc_runs = solver.stats().gc_runs;
  out.reclaimed_words = solver.stats().gc_reclaimed_words;
  out.model_cache_hits = solver.stats().model_cache_hits;
  out.bve_eliminated = solver.stats().bve_eliminated;
  out.rebuilds = session->rebuilds();
  out.ok = true;
  return out;
}

// The soak is deterministic, so run each configuration once and share the
// outcome across the assertions below.
const SoakOutcome& Soak(bool lifecycle_on, bool eager = false) {
  static const Dataset ds = SoakCorpus();
  static const SoakOutcome on =
      RunSoak(ds.MakeSpec(0), ds.entities[0].truth, true, false);
  static const SoakOutcome off =
      RunSoak(ds.MakeSpec(0), ds.entities[0].truth, false, false);
  static const SoakOutcome eager_on =
      RunSoak(ds.MakeSpec(0), ds.entities[0].truth, true, true);
  return lifecycle_on ? (eager ? eager_on : on) : off;
}

TEST(SessionSoakTest, ArenaStaysBoundedOverHundredsOfRounds) {
  const SoakOutcome& on = Soak(true);
  ASSERT_TRUE(on.ok);
  EXPECT_GE(on.gc_runs, 1);
  EXPECT_GT(on.reclaimed_words, 0);
  EXPECT_TRUE(on.arena_bound_held);
  EXPECT_LE(on.peak_words, 2 * on.max_live_words + kArenaSlackWords);
  EXPECT_EQ(on.rebuilds, 0);
}

TEST(SessionSoakTest, LifecycleOffGrowsButStillNeverRebuilds) {
  const SoakOutcome& off = Soak(false);
  ASSERT_TRUE(off.ok);
  EXPECT_EQ(off.gc_runs, 0);
  EXPECT_EQ(off.reclaimed_words, 0);
  EXPECT_EQ(off.rebuilds, 0);
  // The control run demonstrates the leak the collector exists to stop:
  // without GC the arena never shrinks (the footprint IS the high-water
  // mark), while the collected run ends strictly smaller.
  EXPECT_EQ(off.final_arena_words, off.peak_words);
  const SoakOutcome& on = Soak(true);
  EXPECT_GE(off.peak_words, on.peak_words);
  EXPECT_LT(on.final_arena_words, off.final_arena_words);
}

TEST(SessionSoakTest, LifecycleFeaturesAreResultNeutral) {
  const SoakOutcome& on = Soak(true);
  const SoakOutcome& off = Soak(false);
  const SoakOutcome& eager = Soak(true, /*eager=*/true);
  ASSERT_TRUE(on.ok);
  ASSERT_TRUE(off.ok);
  ASSERT_TRUE(eager.ok);
  EXPECT_EQ(on.valid_by_round, off.valid_by_round);
  EXPECT_EQ(on.deduced, off.deduced);
  EXPECT_EQ(eager.valid_by_round, off.valid_by_round);
  EXPECT_EQ(eager.deduced, off.deduced);
  EXPECT_GE(eager.gc_runs, on.gc_runs);
}

TEST(SessionSoakTest, ModelCacheKeepsHittingAcrossRelocations) {
  // Relocation rewrites every clause address the cached models were
  // built against; the cache must keep producing hits afterwards.
  const SoakOutcome& on = Soak(true);
  ASSERT_TRUE(on.ok);
  ASSERT_GE(on.gc_runs, 1);
  EXPECT_GT(on.model_cache_hits, 0);
  const SoakOutcome& off = Soak(false);
  EXPECT_EQ(on.model_cache_hits, off.model_cache_hits);
}

TEST(SessionSoakTest, ExperimentBytesAreIdenticalAcrossLifecycleConfigs) {
  // The end-to-end form of result neutrality: the serialized
  // ExperimentResult (timings excluded) may not move by a byte whether
  // the memory lifecycle is off, default, or maximally eager.
  PersonOptions popts;
  popts.num_entities = 6;
  popts.min_tuples = 12;
  popts.max_tuples = 40;
  popts.seed = 4242;
  const Dataset ds = GeneratePerson(popts);

  ResultJsonOptions json_opts;
  json_opts.include_timings = false;

  auto run = [&](bool lifecycle_on, double gc_frac) {
    ExperimentOptions eopts;
    eopts.max_rounds = 3;
    eopts.answers_per_round = 1;
    eopts.resolve.solver.use_arena_gc = lifecycle_on;
    eopts.resolve.solver.use_bve = lifecycle_on;
    eopts.resolve.solver.gc_frac = gc_frac;
    return ExperimentResultToJson(RunExperiment(ds, eopts), json_opts);
  };

  const std::string off = run(false, 0.25);
  const std::string defaults = run(true, 0.25);
  const std::string eager = run(true, 0.0);
  EXPECT_EQ(defaults, off);
  EXPECT_EQ(eager, off);
}

}  // namespace
}  // namespace ccr
