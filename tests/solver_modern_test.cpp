// Tests for the modernized CDCL core: the randomized ablation-equivalence
// suite (every SolverOptions combination must resolve every entity to the
// byte — the pipeline consumes only SAT verdicts, so heuristics cannot
// change results), a DIMACS-level regression that learnt clauses survive
// deep minimization still implied (checked by re-solve), and unit tests
// for the new machinery: implicit binary watches, LBD tiers, EMA
// restarts, batched ScopedVars release, inprocessing and the cached-model
// witness pool.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/ccr.h"
#include "src/common/rng.h"
#include "src/eval/result_io.h"

namespace ccr {
namespace {

using sat::Lit;
using sat::ScopedVars;
using sat::SolveResult;
using sat::Solver;
using sat::SolverOptions;
using sat::Var;

SolverOptions MakeOptions(bool bin, bool tiers, bool ema, bool ccmin,
                          bool inproc, bool gc, bool sls, bool cache,
                          bool backbone = true) {
  SolverOptions o;
  o.use_binary_watches = bin;
  o.use_lbd_tiers = tiers;
  o.use_ema_restarts = ema;
  o.use_deep_ccmin = ccmin;
  o.use_inprocessing = inproc;
  o.use_arena_gc = gc;
  o.use_sls_seeding = sls;
  o.use_sls_probing = sls;
  o.use_model_cache = cache;
  o.use_backbone_deduce = backbone;
  return o;
}

// ~60 generated entities across all three corpora, small enough that a
// full resolve sweep per option combination stays fast.
Dataset AblationCorpus(const std::string& kind) {
  if (kind == "nba") {
    NbaOptions o;
    o.num_entities = 20;
    o.min_tuples = 3;
    o.max_tuples = 10;
    o.seed = 0xAB1;
    return GenerateNba(o);
  }
  if (kind == "career") {
    CareerOptions o;
    o.num_entities = 20;
    o.min_tuples = 3;
    o.max_tuples = 10;
    o.seed = 0xAB2;
    return GenerateCareer(o);
  }
  PersonOptions o;
  o.num_entities = 20;
  o.min_tuples = 4;
  o.max_tuples = 12;
  o.seed = 0xAB3;
  return GeneratePerson(o);
}

std::string ResolveCorpusToJson(const Dataset& ds,
                                const SolverOptions& solver,
                                bool naive_deduce = false) {
  ExperimentOptions eopts;
  eopts.max_rounds = 3;
  eopts.answers_per_round = 1;
  eopts.resolve.solver = solver;
  eopts.resolve.naive_deduce = naive_deduce;
  const ExperimentResult r = RunExperiment(ds, eopts);
  ResultJsonOptions jopts;
  jopts.include_timings = false;
  return ExperimentResultToJson(r, jopts);
}

// The CI gate of this PR: every combination of the eight ablation axes —
// the six CDCL features, the SLS warm-start bit, and (bit 128) the
// backbone Deduce engine exercised on the NaiveDeduce pipeline, with the
// witness cache on (the default) — plus the fully-legacy and
// cache-less-modern spot checks produce byte-identical
// ExperimentResults on all three corpora. The high bit switches the
// reference too: backbone-engine runs are compared against the per-pair
// Lemma-6 loop (use_backbone_deduce off), the configuration whose
// answers are one solver verdict per pair.
TEST(SolverAblationEquivalenceTest, EveryOptionComboResolvesIdentically) {
  for (const std::string kind : {"person", "nba", "career"}) {
    const Dataset ds = AblationCorpus(kind);
    const std::string baseline = ResolveCorpusToJson(ds, SolverOptions{});
    const std::string naive_baseline = ResolveCorpusToJson(
        ds,
        MakeOptions(true, true, true, true, true, true, true, true,
                    /*backbone=*/false),
        /*naive_deduce=*/true);
    for (int mask = 0; mask < 256; ++mask) {
      const bool naive = mask & 128;
      const SolverOptions opts =
          MakeOptions(mask & 1, mask & 2, mask & 4, mask & 8, mask & 16,
                      mask & 32, mask & 64, /*cache=*/true);
      EXPECT_EQ(ResolveCorpusToJson(ds, opts, naive),
                naive ? naive_baseline : baseline)
          << kind << " flag mask " << mask;
    }
    // Legacy heuristics carry backbone-off: the naive pipeline under
    // them must still match the per-pair reference bytes.
    EXPECT_EQ(ResolveCorpusToJson(ds, SolverOptions::LegacyHeuristics(),
                                  /*naive_deduce=*/true),
              naive_baseline)
        << kind << " legacy, naive pipeline";
    // Witness-cache off: the one remaining axis, spot-checked against the
    // fully legacy (the shared LegacyHeuristics configuration) and fully
    // modern corners.
    EXPECT_EQ(ResolveCorpusToJson(ds, SolverOptions::LegacyHeuristics()),
              baseline)
        << kind << " legacy, no cache";
    EXPECT_EQ(ResolveCorpusToJson(ds, MakeOptions(true, true, true, true,
                                                  true, true, true, false)),
              baseline)
        << kind << " modern, no cache";
    // Collector pressure extremes: compact at every opportunity
    // (gc_frac = 0 fires on the first dead word) and bounded variable
    // elimination off — the arena lifecycle may never move a result.
    SolverOptions eager_gc;
    eager_gc.gc_frac = 0.0;
    EXPECT_EQ(ResolveCorpusToJson(ds, eager_gc), baseline)
        << kind << " eager gc";
    SolverOptions no_bve;
    no_bve.use_bve = false;
    EXPECT_EQ(ResolveCorpusToJson(ds, no_bve), baseline)
        << kind << " bve off";
  }
}

// DIMACS-level regression: every clause the modern solver learns — after
// recursive minimization, possibly migrated into the binary watch lists —
// must still be implied by the original formula: F ∧ ¬C re-solved by an
// independent solver must be UNSAT.
TEST(DeepMinimizationTest, LearntClausesStayImplied) {
  Rng rng(0xD1CE);
  int checked = 0;
  // Random near-threshold 3-SAT plus pigeonhole instances — the latter
  // guarantee a conflict-heavy search with a meaty learnt DB.
  for (int round = 0; round < 46; ++round) {
    sat::Cnf cnf;
    if (round < 40) {
      const int n_vars = 8 + static_cast<int>(rng.Below(8));
      const int n_clauses = 4 * n_vars + static_cast<int>(rng.Below(20));
      cnf.EnsureVars(n_vars);
      for (int c = 0; c < n_clauses; ++c) {
        const int len = 2 + static_cast<int>(rng.Below(2));
        std::vector<Lit> clause;
        for (int k = 0; k < len; ++k) {
          clause.push_back(
              Lit(static_cast<Var>(rng.Below(n_vars)), rng.Chance(0.5)));
        }
        cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
      }
    } else {
      const int holes = 3 + (round - 40);  // 3..8
      const int pigeons = holes + 1;
      auto var = [&](int p, int h) { return p * holes + h; };
      for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h) {
          clause.push_back(Lit::Pos(var(p, h)));
        }
        cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
      }
      for (int h = 0; h < holes; ++h) {
        for (int p1 = 0; p1 < pigeons; ++p1) {
          for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
            cnf.AddBinary(Lit::Neg(var(p1, h)), Lit::Neg(var(p2, h)));
          }
        }
      }
    }
    Solver s;  // modern defaults: deep ccmin, binary watches, tiers
    s.AddCnf(cnf);
    (void)s.Solve();
    for (const std::vector<Lit>& learnt : s.LearntClauses()) {
      ASSERT_FALSE(learnt.empty());
      Solver check;
      check.AddCnf(cnf);
      for (Lit l : learnt) {
        if (!check.AddClause({~l})) break;  // already contradictory: fine
      }
      EXPECT_EQ(check.Solve(), SolveResult::kUnsat)
          << "round " << round << ": learnt clause not implied";
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);  // the family must actually produce learnts
}

TEST(BinaryWatchTest, BinaryChainsPropagateAndCount) {
  Solver s;  // binary watches on by default
  const int n = 40;
  std::vector<Var> v(n);
  for (int i = 0; i < n; ++i) v[i] = s.NewVar();
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(s.AddClause({Lit::Neg(v[i]), Lit::Pos(v[i + 1])}));
  }
  ASSERT_TRUE(s.AddClause({Lit::Pos(v[0])}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  for (int i = 0; i < n; ++i) EXPECT_TRUE(s.ModelValue(v[i]));
  // The whole chain ran through the implicit binary implication lists.
  EXPECT_GE(s.stats().binary_propagations, n - 1);
}

TEST(BinaryWatchTest, BinaryConflictAnalyzesCorrectly) {
  // x -> a, x -> ~a forces ~x through a binary conflict at level 1.
  Solver s;
  const Var x = s.NewVar(), a = s.NewVar(), y = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Neg(x), Lit::Pos(a)}));
  ASSERT_TRUE(s.AddClause({Lit::Neg(x), Lit::Neg(a)}));
  ASSERT_TRUE(s.AddClause({Lit::Pos(x), Lit::Pos(y)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(x));
  EXPECT_TRUE(s.ModelValue(y));
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Pos(x)}), SolveResult::kUnsat);
}

TEST(ScopedVarsTest, BatchedReleaseFreezesEveryVar) {
  Solver s;
  const Var keep = s.NewVar();
  std::vector<Var> scope_vars;
  {
    ScopedVars scope(&s);
    for (int i = 0; i < 32; ++i) {
      const Var v = scope.NewVar();
      scope_vars.push_back(v);
      scope.AddClause({Lit::Pos(v), Lit::Pos(keep)});
    }
    ASSERT_EQ(s.SolveWithAssumptions({scope.activation()}),
              SolveResult::kSat);
  }  // one batched FreezeScope call releases all 32 vars + the activation
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  for (Var v : scope_vars) {
    EXPECT_FALSE(s.ModelValue(v));  // frozen false
    EXPECT_EQ(s.SolveWithAssumptions({Lit::Pos(v)}), SolveResult::kUnsat)
        << "frozen scope var " << v << " resurfaced";
  }
  // The base variable is untouched by the release.
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Pos(keep)}), SolveResult::kSat);
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Neg(keep)}), SolveResult::kSat);
}

TEST(InprocessingTest, SubsumptionAndVivificationCounters) {
  SolverOptions opts;  // modern defaults, inprocessing on
  Solver s(opts);
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar(), d = s.NewVar();
  // Baseline DB with a redundant (subsumable) and a vivifiable clause.
  ASSERT_TRUE(s.AddClause(
      {Lit::Pos(a), Lit::Pos(b), Lit::Pos(c), Lit::Pos(d)}));  // target
  ASSERT_TRUE(s.AddClause({Lit::Neg(a), Lit::Pos(b), Lit::Pos(c)}));
  ASSERT_TRUE(s.Simplify());  // primes implicitly: baseline stamped
  // The delta: (a ∨ b) subsumes the 4-ary clause's a∨b∨c∨d? No — it
  // subsumes nothing yet, but self-subsumes (¬a ∨ b ∨ c) into (b ∨ c).
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(b), Lit::Pos(c)}));
  ASSERT_TRUE(s.Simplify());
  EXPECT_GT(s.stats().subsumed, 0)
      << "(a∨b∨c) must subsume/strengthen the baseline clauses";
  // Equivalence is preserved: (a∨b∨c) ∧ (¬a∨b∨c) ⊨ (b∨c), so ¬b∧¬c is
  // contradictory while ¬b alone is not.
  ASSERT_EQ(s.SolveWithAssumptions({Lit::Neg(b)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(c));
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Neg(b), Lit::Neg(c)}),
            SolveResult::kUnsat);
}

TEST(InprocessingTest, VivificationShortensImpliedClause) {
  SolverOptions opts;
  Solver s(opts);
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar(), x = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(b)}));
  ASSERT_TRUE(s.Simplify());  // prime: baseline in
  // Delta clause (a ∨ b ∨ x): vivification assumes ¬a, ¬b — the baseline
  // then conflicts, so x is provably redundant and is distilled away.
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(b), Lit::Pos(x)}));
  ASSERT_TRUE(s.AddClause({Lit::Pos(c), Lit::Pos(x), Lit::Pos(b)}));
  ASSERT_TRUE(s.Simplify());
  EXPECT_GT(s.stats().vivified + s.stats().subsumed, 0);
  // Still equivalent.
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Neg(a)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(b));
}

TEST(ModelCacheTest, WitnessReuseAnswersWithoutSearch) {
  Solver s;  // cache on by default
  const Var a = s.NewVar(), b = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(b)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  const bool ma = s.ModelValue(a), mb = s.ModelValue(b);
  // Re-asking something the model already witnesses burns no decisions.
  const int64_t decisions_before = s.stats().decisions;
  ASSERT_EQ(s.SolveWithAssumptions({Lit(a, !ma)}), SolveResult::kSat);
  EXPECT_GT(s.stats().model_cache_hits, 0);
  EXPECT_EQ(s.stats().decisions, decisions_before);
  EXPECT_EQ(s.ModelValue(a), ma);
  EXPECT_EQ(s.ModelValue(b), mb);
  // Adding a clause invalidates: the next solve searches again.
  const int64_t hits = s.stats().model_cache_hits;
  ASSERT_TRUE(s.AddClause({Lit(a, ma)}));  // force a to flip
  ASSERT_EQ(s.SolveWithAssumptions({Lit::Pos(b), Lit::Neg(b)}),
            SolveResult::kUnsat);  // contradictory assumptions: no hit
  EXPECT_EQ(s.stats().model_cache_hits, hits);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_EQ(s.ModelValue(a), !ma);
}

TEST(ArenaGcTest, CompactionReclaimsDeadWordsAndKeepsAnswers) {
  SolverOptions gc_opts;
  gc_opts.use_arena_gc = false;  // hold the trigger; collect by hand below
  Solver s(gc_opts);
  const int n = 64;
  std::vector<Var> v(n);
  for (int i = 0; i < n; ++i) v[i] = s.NewVar();
  const Var hub = s.NewVar();
  // A pile of wide clauses all satisfied once `hub` is forced true: the
  // top-level sweep marks every one dead but the words stay in the arena
  // until the collector runs.
  for (int i = 0; i + 3 < n; ++i) {
    ASSERT_TRUE(s.AddClause({Lit::Pos(hub), Lit::Pos(v[i]),
                             Lit::Pos(v[i + 1]), Lit::Pos(v[i + 2]),
                             Lit::Pos(v[i + 3])}));
  }
  // Keep one clause alive so the compacted arena is not trivially empty.
  ASSERT_TRUE(s.AddClause({Lit::Pos(v[0]), Lit::Pos(v[1]), Lit::Pos(v[2])}));
  ASSERT_TRUE(s.AddClause({Lit::Pos(hub)}));
  ASSERT_TRUE(s.Simplify());  // sweeps the satisfied pile
  ASSERT_GT(s.arena_words(), s.arena_live_words());
  const size_t dead = s.arena_words() - s.arena_live_words();
  s.GarbageCollect();
  EXPECT_EQ(s.arena_words(), s.arena_live_words());
  EXPECT_GE(s.stats().gc_runs, 1);
  EXPECT_GE(static_cast<size_t>(s.stats().gc_reclaimed_words), dead);
  // The survivor still constrains the relocated world.
  EXPECT_EQ(s.SolveWithAssumptions(
                {Lit::Neg(v[0]), Lit::Neg(v[1]), Lit::Neg(v[2])}),
            SolveResult::kUnsat);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(hub));
}

TEST(ArenaGcTest, ModelCacheSurvivesRelocation) {
  Solver s;  // witness cache on by default
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(b), Lit::Pos(c)}));
  ASSERT_TRUE(s.AddClause({Lit::Neg(a), Lit::Pos(b), Lit::Pos(c)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  const bool mb = s.ModelValue(b), mc = s.ModelValue(c);
  // Relocating clauses must not invalidate cached witnesses: the formula
  // is unchanged, so the stored models still satisfy it.
  s.GarbageCollect();
  const int64_t decisions_before = s.stats().decisions;
  ASSERT_EQ(s.SolveWithAssumptions({Lit(b, !mb)}), SolveResult::kSat);
  EXPECT_GT(s.stats().model_cache_hits, 0);
  EXPECT_EQ(s.stats().decisions, decisions_before);
  EXPECT_EQ(s.ModelValue(b), mb);
  EXPECT_EQ(s.ModelValue(c), mc);
}

// Release-build sanity for the std::bit_cast activity accessors: a
// conflict-heavy search bumps/decays float activities stored inside the
// uint32_t arena on every learnt clause, then deletes by activity. The
// whole suite compiles with -fstrict-aliasing, so a type-punning
// regression in ClauseActivity/SetClauseActivity is UB the optimizer is
// entitled to exploit — this test gives it a dense workload to exploit
// it on.
TEST(ClauseActivityTest, ActivityDrivenDeletionSurvivesStrictAliasing) {
  SolverOptions opts;
  opts.use_lbd_tiers = false;  // legacy activity-sorted ReduceDb path
  Solver s(opts);
  sat::Cnf cnf;
  const int holes = 9, pigeons = 10;
  auto var = [&](int p, int h) { return p * holes + h; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Lit::Pos(var(p, h)));
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.AddBinary(Lit::Neg(var(p1, h)), Lit::Neg(var(p2, h)));
      }
    }
  }
  s.AddCnf(cnf);
  ASSERT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 100);  // real bump/decay/delete traffic
}

TEST(BveTest, EliminatedVarIsResolvedAwayAndModelExtends) {
  Solver s;  // use_bve on by default
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(b)}));
  ASSERT_TRUE(s.AddClause({Lit::Neg(a), Lit::Pos(c)}));
  s.MarkEliminable(a);
  ASSERT_TRUE(s.Simplify());
  ASSERT_TRUE(s.VarEliminated(a));
  EXPECT_GE(s.stats().bve_eliminated, 1);
  // The resolvent (b ∨ c) must constrain the reduced formula...
  EXPECT_EQ(s.SolveWithAssumptions({Lit::Neg(b), Lit::Neg(c)}),
            SolveResult::kUnsat);
  // ...and a full solve must reconstruct a value for the eliminated
  // variable that satisfies the ORIGINAL clauses.
  ASSERT_EQ(s.SolveWithAssumptions({Lit::Neg(c)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(b));
  EXPECT_FALSE(s.ModelValue(a));  // (¬a ∨ c) with c false forces ¬a
  ASSERT_EQ(s.SolveWithAssumptions({Lit::Neg(b)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(a));  // (a ∨ b) with b false forces a
  EXPECT_TRUE(s.ModelValue(c));
}

TEST(BveTest, GrowthRuleKeepsDenseVars) {
  Solver s;
  const Var x = s.NewVar();
  std::vector<Var> others;
  // 5 positive x 5 negative occurrences -> 25 resolvents > 10 originals:
  // the no-growth rule must refuse.
  for (int i = 0; i < 5; ++i) {
    const Var p = s.NewVar(), q = s.NewVar(), r = s.NewVar(), t = s.NewVar();
    others.insert(others.end(), {p, q, r, t});
    ASSERT_TRUE(s.AddClause({Lit::Pos(x), Lit::Pos(p), Lit::Pos(q)}));
    ASSERT_TRUE(s.AddClause({Lit::Neg(x), Lit::Pos(r), Lit::Pos(t)}));
  }
  s.MarkEliminable(x);
  ASSERT_TRUE(s.Simplify());
  EXPECT_FALSE(s.VarEliminated(x));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(LbdTierTest, TieredCountersPopulateOnConflictHeavySearch) {
  // Pigeonhole forces real conflict-driven search: glue statistics and
  // the tier counters must move.
  SolverOptions opts;  // modern defaults
  Solver s(opts);
  sat::Cnf cnf;
  const int holes = 6, pigeons = 7;
  auto var = [&](int p, int h) { return p * holes + h; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Lit::Pos(var(p, h)));
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.AddBinary(Lit::Neg(var(p1, h)), Lit::Neg(var(p2, h)));
      }
    }
  }
  s.AddCnf(cnf);
  ASSERT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0);
  EXPECT_GT(s.stats().lbd_sum, 0);
  EXPECT_GT(s.stats().learnt_core + s.stats().learnt_mid +
                s.stats().learnt_local,
            0);
  EXPECT_GT(s.stats().binary_propagations, 0);
}

// The session engine stamps per-phase solver deltas into the RoundTrace;
// the legacy engine (throwaway solvers) reports zeros.
TEST(RoundTraceSolverStatsTest, SessionPhasesAreAttributed) {
  PersonOptions popts;
  popts.num_entities = 1;
  popts.min_tuples = 6;
  popts.max_tuples = 10;
  popts.seed = 0x5A7;
  const Dataset ds = GeneratePerson(popts);
  TruthOracle oracle(ds.entities[0].truth, 1);

  ResolveOptions session_opts;
  session_opts.max_rounds = 2;
  auto rs = Resolve(ds.MakeSpec(0), &oracle, session_opts);
  ASSERT_TRUE(rs.ok());
  int64_t total_props = 0;
  for (const RoundTrace& t : rs->trace) {
    total_props += t.validity_solver.propagations +
                   t.suggest_solver.propagations +
                   t.encode_solver.propagations;
  }
  EXPECT_GT(total_props, 0) << "session phases must attribute solver work";

  TruthOracle oracle2(ds.entities[0].truth, 1);
  ResolveOptions legacy_opts;
  legacy_opts.max_rounds = 2;
  legacy_opts.use_session = false;
  auto rl = Resolve(ds.MakeSpec(0), &oracle2, legacy_opts);
  ASSERT_TRUE(rl.ok());
  for (const RoundTrace& t : rl->trace) {
    EXPECT_EQ(t.validity_solver.propagations, 0);
    EXPECT_EQ(t.suggest_solver.propagations, 0);
    EXPECT_EQ(t.encode_solver.propagations, 0);
  }
}

}  // namespace
}  // namespace ccr
