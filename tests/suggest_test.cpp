// Tests for Suggest / GetSug (§V-C.2), against Example 12: for George the
// suggestion is A = {status} with V(status) = {retired, unemployed}.

#include <gtest/gtest.h>

#include <algorithm>

#include "paper_fixture.h"
#include "src/core/suggest.h"
#include "src/encode/cnf_builder.h"

namespace ccr {
namespace {

using testing::GeorgeSpec;
using testing::PaperSchema;

class SuggestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    se_ = GeorgeSpec();
    auto inst = Instantiation::Build(se_);
    ASSERT_TRUE(inst.ok());
    inst_ = std::move(inst).value();
    phi_ = BuildCnf(inst_);
    od_ = DeduceOrder(inst_, phi_);
    known_ = ExtractTrueValueIndices(inst_.varmap, od_);
    candidates_ = CandidateValues(inst_.varmap, od_);
  }

  std::vector<Value> AttrCandidates(const Suggestion& sug,
                                    const std::string& attr_name) const {
    const int attr = PaperSchema().IndexOf(attr_name);
    std::vector<Value> out;
    for (size_t i = 0; i < sug.attrs.size(); ++i) {
      if (sug.attrs[i] != attr) continue;
      for (int v : sug.candidates[i]) {
        out.push_back(inst_.varmap.domain(attr)[v]);
      }
    }
    return out;
  }

  Specification se_;
  Instantiation inst_;
  sat::Cnf phi_;
  DeducedOrders od_;
  std::vector<int> known_;
  std::vector<std::vector<int>> candidates_;
};

TEST_F(SuggestTest, Example12GeorgeSuggestion) {
  const Suggestion sug = Suggest(inst_, phi_, candidates_, known_);
  const Schema schema = PaperSchema();
  // A = {status}: validating status determines everything else.
  ASSERT_EQ(sug.attrs.size(), 1u);
  EXPECT_EQ(schema.name(sug.attrs[0]), "status");
  // V(status) = {retired, unemployed}.
  const auto cands = AttrCandidates(sug, "status");
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_NE(std::find(cands.begin(), cands.end(), Value::Str("retired")),
            cands.end());
  EXPECT_NE(
      std::find(cands.begin(), cands.end(), Value::Str("unemployed")),
      cands.end());
  // A' = {job, AC, zip, city, county}.
  std::vector<std::string> derivable;
  for (int a : sug.derivable_attrs) derivable.push_back(schema.name(a));
  std::sort(derivable.begin(), derivable.end());
  EXPECT_EQ(derivable, (std::vector<std::string>{"AC", "city", "county",
                                                 "job", "zip"}));
}

TEST_F(SuggestTest, CliqueRulesAreConflictFreeWithSe) {
  // GetSug output must be realizable: asserting every kept rule's values
  // on top of Φ(Se) stays satisfiable.
  const Suggestion sug = Suggest(inst_, phi_, candidates_, known_);
  sat::Cnf check = phi_;
  const VarMap& vm = inst_.varmap;
  for (const DerivationRule& r : sug.clique_rules) {
    auto dominate = [&](int attr, int idx) {
      const int d = static_cast<int>(vm.domain(attr).size());
      for (int other = 0; other < d; ++other) {
        if (other != idx) {
          check.AddUnit(sat::Lit::Pos(vm.VarOf(attr, other, idx)));
        }
      }
    };
    for (const auto& [attr, v] : r.lhs) dominate(attr, v);
    dominate(r.rhs_attr, r.rhs_value);
  }
  sat::Solver solver;
  solver.AddCnf(check);
  EXPECT_EQ(solver.Solve(), sat::SolveResult::kSat);
}

TEST_F(SuggestTest, GreedyCliqueModeAlsoWorks) {
  SuggestOptions opts;
  opts.exact_clique = false;
  const Suggestion sug = Suggest(inst_, phi_, candidates_, known_, opts);
  // Still a valid suggestion: asks about some unresolved attribute.
  EXPECT_FALSE(sug.attrs.empty());
  for (int a : sug.attrs) EXPECT_LT(known_[a], 0);
}

TEST_F(SuggestTest, SuggestionSkipsResolvedAttributes) {
  const Suggestion sug = Suggest(inst_, phi_, candidates_, known_);
  const Schema schema = PaperSchema();
  for (int a : sug.attrs) {
    EXPECT_NE(schema.name(a), "name");
    EXPECT_NE(schema.name(a), "kids");
  }
}

TEST_F(SuggestTest, ToStringMentionsAttributes) {
  const Suggestion sug = Suggest(inst_, phi_, candidates_, known_);
  const std::string s = sug.ToString(inst_.varmap, PaperSchema());
  EXPECT_NE(s.find("status"), std::string::npos);
}

TEST_F(SuggestTest, FullyResolvedEntityYieldsEmptySuggestion) {
  // Edith resolves automatically; the suggestion must be empty.
  Specification se = testing::EdithSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  const DeducedOrders od = DeduceOrder(*inst, phi);
  const auto known = ExtractTrueValueIndices(inst->varmap, od);
  const auto candidates = CandidateValues(inst->varmap, od);
  const Suggestion sug = Suggest(*inst, phi, candidates, known);
  EXPECT_TRUE(sug.attrs.empty());
}

}  // namespace
}  // namespace ccr
