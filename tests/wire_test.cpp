// Tests for the service wire format (src/service/wire.h): encode/decode
// round-trips, incremental (byte-at-a-time) decoding, back-to-back frames
// in one buffer, and the malformed-frame cases the server relies on to
// fail closed — oversize length prefixes, short headers, and session-id
// lengths that overrun the payload.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/service/wire.h"

namespace ccr {
namespace service {
namespace {

Frame MakeFrame(RequestType type, std::string session_id, std::string body) {
  Frame f;
  f.type = static_cast<uint8_t>(type);
  f.session_id = std::move(session_id);
  f.body = std::move(body);
  return f;
}

void ExpectSameFrame(const Frame& want, const Frame& got) {
  EXPECT_EQ(want.version, got.version);
  EXPECT_EQ(want.type, got.type);
  EXPECT_EQ(static_cast<int>(want.status), static_cast<int>(got.status));
  EXPECT_EQ(want.session_id, got.session_id);
  EXPECT_EQ(want.body, got.body);
}

TEST(WireTest, RoundTripsARequestFrame) {
  Frame in = MakeFrame(RequestType::kRound, "session-42", "{\"x\": 1}");
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(in, &bytes));

  FrameDecoder dec;
  dec.Feed(bytes);
  Frame out;
  ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kFrame);
  ExpectSameFrame(in, out);
  EXPECT_FALSE(out.is_response());
  EXPECT_EQ(out.request_type(), RequestType::kRound);
  EXPECT_EQ(dec.Next(&out), FrameDecoder::Outcome::kNeedMore);
}

TEST(WireTest, RoundTripsAResponseWithStatus) {
  Frame in;
  in.type = static_cast<uint8_t>(RequestType::kOpen) | kResponseBit;
  in.status = ErrorCode::kAlreadyExists;
  in.session_id = "s";
  in.body = "{\"error\": \"open of a live session\"}";
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(in, &bytes));

  FrameDecoder dec;
  dec.Feed(bytes);
  Frame out;
  ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kFrame);
  ExpectSameFrame(in, out);
  EXPECT_TRUE(out.is_response());
  EXPECT_EQ(out.request_type(), RequestType::kOpen);
}

TEST(WireTest, RoundTripsEmptySessionIdAndBody) {
  Frame in = MakeFrame(RequestType::kPing, "", "");
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(in, &bytes));
  EXPECT_EQ(bytes.size(), 4u + kFrameHeaderBytes);

  FrameDecoder dec;
  dec.Feed(bytes);
  Frame out;
  ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kFrame);
  ExpectSameFrame(in, out);
}

TEST(WireTest, BodyBytesAreOpaque) {
  // The body is not inspected by the framing layer: NULs and high bytes
  // must survive.
  std::string body;
  for (int i = 0; i < 256; ++i) body.push_back(static_cast<char>(i));
  Frame in = MakeFrame(RequestType::kExtend, std::string("\x00\xff", 2), body);
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(in, &bytes));

  FrameDecoder dec;
  dec.Feed(bytes);
  Frame out;
  ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kFrame);
  ExpectSameFrame(in, out);
}

TEST(WireTest, DecodesByteAtATime) {
  Frame in = MakeFrame(RequestType::kAnswer, "abc", "payload body");
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(in, &bytes));

  FrameDecoder dec;
  Frame out;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.Feed(std::string_view(&bytes[i], 1));
    ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kNeedMore)
        << "after byte " << i;
  }
  dec.Feed(std::string_view(&bytes[bytes.size() - 1], 1));
  ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kFrame);
  ExpectSameFrame(in, out);
}

TEST(WireTest, DecodesBackToBackFramesFromOneBuffer) {
  std::string bytes;
  std::vector<Frame> in;
  for (int i = 0; i < 16; ++i) {
    in.push_back(MakeFrame(RequestType::kRound, "s" + std::to_string(i),
                           std::string(static_cast<size_t>(i) * 31, 'x')));
    ASSERT_TRUE(EncodeFrame(in.back(), &bytes));
  }

  FrameDecoder dec;
  dec.Feed(bytes);
  Frame out;
  for (const Frame& want : in) {
    ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kFrame);
    ExpectSameFrame(want, out);
  }
  EXPECT_EQ(dec.Next(&out), FrameDecoder::Outcome::kNeedMore);
}

TEST(WireTest, EncodeRejectsOversizeFrames) {
  Frame in = MakeFrame(RequestType::kOpen, "s", "");
  in.body.assign(kMaxFrameBytes, 'x');  // header pushes it over the cap
  std::string bytes;
  EXPECT_FALSE(EncodeFrame(in, &bytes));
  EXPECT_TRUE(bytes.empty());
}

TEST(WireTest, EncodeRejectsOversizeSessionId) {
  Frame in = MakeFrame(RequestType::kOpen, std::string(70000, 's'), "");
  std::string bytes;
  EXPECT_FALSE(EncodeFrame(in, &bytes));
}

TEST(WireTest, DecoderRejectsHostileLengthPrefix) {
  // 0xFFFFFFFF little-endian: must fail as soon as the prefix is readable,
  // not after buffering 4 GiB.
  FrameDecoder dec;
  dec.Feed(std::string(4, '\xff'));
  Frame out;
  ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kError);
  EXPECT_NE(dec.error().find("exceeds"), std::string::npos) << dec.error();
  // The stream stays poisoned even if more bytes arrive.
  dec.Feed(std::string(64, 'x'));
  EXPECT_EQ(dec.Next(&out), FrameDecoder::Outcome::kError);
}

TEST(WireTest, DecoderRejectsPayloadShorterThanHeader) {
  // payload_len = 2 cannot even hold the fixed header.
  FrameDecoder dec;
  dec.Feed(std::string("\x02\x00\x00\x00", 4));
  Frame out;
  ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kError);
  EXPECT_NE(dec.error().find("shorter"), std::string::npos) << dec.error();
}

TEST(WireTest, DecoderRejectsSessionIdOverrunningPayload) {
  // A valid-looking header whose session_id_len promises more bytes than
  // the payload carries.
  std::string bytes;
  bytes.append("\x06\x00\x00\x00", 4);  // payload: header (5) + 1 byte
  bytes.push_back(static_cast<char>(kWireVersion));
  bytes.push_back(static_cast<char>(RequestType::kPing));
  bytes.push_back('\x00');              // status ok
  bytes.append("\x40\x00", 2);          // session_id_len = 64 > 1 available
  bytes.push_back('s');
  FrameDecoder dec;
  dec.Feed(bytes);
  Frame out;
  ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kError);
  EXPECT_NE(dec.error().find("overruns"), std::string::npos) << dec.error();
}

TEST(WireTest, FuzzGarbagePrefixesNeverCrash) {
  // Deterministic garbage: every 4-byte prefix either waits for more
  // bytes, yields a (meaningless but well-formed) frame, or errors — it
  // must never crash or loop.
  uint32_t x = 0x9E3779B9u;
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes;
    const size_t n = 1 + (x % 64);
    for (size_t i = 0; i < n; ++i) {
      x = x * 1664525u + 1013904223u;
      bytes.push_back(static_cast<char>(x >> 24));
    }
    FrameDecoder dec;
    dec.Feed(bytes);
    Frame out;
    for (int step = 0; step < 8; ++step) {
      const FrameDecoder::Outcome got = dec.Next(&out);
      if (got != FrameDecoder::Outcome::kFrame) break;
    }
  }
}

TEST(WireTest, LongLivedConnectionBufferDoesNotGrow) {
  // After thousands of frames the decoder's internal buffer must stay
  // bounded by (roughly) one frame, or long-lived connections leak.
  Frame in = MakeFrame(RequestType::kPing, "s", std::string(128, 'p'));
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(in, &bytes));
  FrameDecoder dec;
  Frame out;
  for (int i = 0; i < 5000; ++i) {
    dec.Feed(bytes);
    ASSERT_EQ(dec.Next(&out), FrameDecoder::Outcome::kFrame);
  }
  ExpectSameFrame(in, out);
}

TEST(WireTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kOk), "ok");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kOverloaded), "overloaded");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kShuttingDown), "shutting_down");
}

}  // namespace
}  // namespace service
}  // namespace ccr
