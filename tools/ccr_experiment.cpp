// ccr_experiment: the multi-process shard of the evaluation pipeline.
//
// Run mode resolves one shard of a generated corpus and serializes the
// ExperimentResult as JSON; merge mode pools shard files back into the
// result a single unsharded run would produce. Because the corpus is
// deterministic in its generator seed and AccuracyCounts pool losslessly,
// sharding a run across processes (or machines — shard files are plain
// JSON, scp them) is exact, which scripts/shard.sh asserts byte-for-byte.
//
//   # one shard of four, two worker threads, timing-free deterministic out
//   ccr_experiment --dataset person --entities 24 --shard 1/4
//       --threads 2 --no-timings --out shard1.json
//   # pool the shards
//   ccr_experiment --merge shard*.json --no-timings --out merged.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/ccr.h"

namespace ccr {
namespace {

struct CliOptions {
  std::string dataset = "person";
  int entities = 24;
  uint64_t seed = 0;  // 0 = the generator's default seed
  int min_tuples = 0;  // 0 = the generator's default
  int max_tuples = 0;
  int shard = 0;
  int num_shards = 1;
  int threads = 1;
  int rounds = 3;
  int answers_per_round = 1 << 20;
  double sigma_fraction = 1.0;
  double gamma_fraction = 1.0;
  std::string engine = "session";  // session (default) | legacy
  std::string solver = "modern";   // modern (default) | legacy heuristics
  std::string deduce = "fast";     // fast (default) | naive (Lemma-6 solves)
  int portfolio = 0;               // >1 = portfolio workers per solve
  bool include_timings = true;
  bool reuse_allocations = true;
  bool solver_stats = false;
  std::string out = "-";
  bool merge_mode = false;
  std::vector<std::string> merge_inputs;
};

void PrintUsage(std::FILE* to) {
  std::fprintf(to,
               "Usage:\n"
               "  ccr_experiment [flags]                 run one shard\n"
               "  ccr_experiment --merge F1 F2... [flags] pool shard files\n"
               "\n"
               "Run flags:\n"
               "  --dataset NAME    person | nba | career (default person)\n"
               "  --entities N      corpus size before sharding (default 24)\n"
               "  --seed S          generator seed (default: generator's)\n"
               "  --min-tuples N    override generator min tuples/entity\n"
               "  --max-tuples N    override generator max tuples/entity\n"
               "  --shard K/N       resolve entities i with i%%N == K "
               "(default 0/1)\n"
               "  --threads T       worker threads in this process "
               "(default 1)\n"
               "  --rounds R        max interaction rounds (default 3)\n"
               "  --answers-per-round N  oracle answers per suggestion\n"
               "  --sigma F         fraction of Sigma (default 1.0)\n"
               "  --gamma F         fraction of Gamma (default 1.0)\n"
               "  --engine E        session (persistent-solver incremental\n"
               "                    engine, default) | legacy (re-encode\n"
               "                    every round; A/B reference)\n"
               "  --solver S        modern (binary watches, LBD tiers, EMA\n"
               "                    restarts, deep ccmin, inprocessing;\n"
               "                    default) | legacy (all five off; the\n"
               "                    MiniSat-2003 heuristics) | nogc (modern\n"
               "                    with arena GC and variable elimination\n"
               "                    off) | sls (alias of modern; the SLS\n"
               "                    warm starts are on by default) | nosls\n"
               "                    (modern with local-search seeding and\n"
               "                    MaxSAT probing off) | nobackbone\n"
               "                    (modern with the backbone Deduce engine\n"
               "                    off: one Lemma-6 solve per pair on the\n"
               "                    naive pipeline). Results are\n"
               "                    bit-identical in all cases.\n"
               "  --deduce D        fast (Fig. 5 unit propagation, default)\n"
               "                    | naive (exact Lemma-6 solver queries;\n"
               "                    the solver-bound pipeline the backbone\n"
               "                    engine accelerates)\n"
               "  --portfolio N     race N diversified CDCL workers per\n"
               "                    solve with learnt-clause sharing\n"
               "                    (default 0 = single-threaded; sharing\n"
               "                    changes time-to-verdict, never results,\n"
               "                    so output stays bit-identical)\n"
               "  --solver-stats    dump pooled per-phase solver statistics\n"
               "                    (conflicts, binary propagations, glue,\n"
               "                    tier/inprocessing counters) on stderr\n"
               "  --no-reuse        disable cross-entity solver pooling\n"
               "\n"
               "Common flags:\n"
               "  --out FILE        output path, '-' = stdout (default)\n"
               "  --no-timings      zero the machine-dependent timings so\n"
               "                    equal results serialize to equal bytes\n"
               "  --help            this text\n");
}

// Strict numeric parse: the whole string must be consumed ("1O0" or "abc"
// must be a usage error, not a silent 1 or 0).
bool ParseInt64(const char* s, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

bool ParseShard(const std::string& arg, int* shard, int* num_shards) {
  const size_t slash = arg.find('/');
  if (slash == std::string::npos) return false;
  char* end = nullptr;
  *shard = static_cast<int>(std::strtol(arg.c_str(), &end, 10));
  if (end != arg.c_str() + slash) return false;
  *num_shards =
      static_cast<int>(std::strtol(arg.c_str() + slash + 1, &end, 10));
  if (*end != '\0') return false;
  return *num_shards > 0 && *shard >= 0 && *shard < *num_shards;
}

// Returns 0/1/2 exit-style; fills `opts`.
int ParseArgs(int argc, char** argv, CliOptions* opts) {
  bool in_merge_list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      in_merge_list = false;
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 1;
    }
    if (arg == "--merge") {
      opts->merge_mode = true;
      in_merge_list = true;
      continue;
    }
    if (arg == "--no-timings") {
      opts->include_timings = false;
      in_merge_list = false;
      continue;
    }
    if (arg == "--no-reuse") {
      opts->reuse_allocations = false;
      in_merge_list = false;
      continue;
    }
    if (arg == "--solver-stats") {
      opts->solver_stats = true;
      in_merge_list = false;
      continue;
    }
    if (arg == "--solver") {
      const char* v = next_value("--solver");
      if (v == nullptr) return 2;
      if (std::string(v) != "modern" && std::string(v) != "legacy" &&
          std::string(v) != "nogc" && std::string(v) != "sls" &&
          std::string(v) != "nosls" && std::string(v) != "nobackbone") {
        std::fprintf(stderr,
                     "--solver wants modern|legacy|nogc|sls|nosls|nobackbone,"
                     " got %s\n",
                     v);
        return 2;
      }
      opts->solver = v;
      continue;
    }
    if (arg == "--deduce") {
      const char* v = next_value("--deduce");
      if (v == nullptr) return 2;
      if (std::string(v) != "fast" && std::string(v) != "naive") {
        std::fprintf(stderr, "--deduce wants fast|naive, got %s\n", v);
        return 2;
      }
      opts->deduce = v;
      continue;
    }
    if (arg == "--dataset") {
      const char* v = next_value("--dataset");
      if (v == nullptr) return 2;
      opts->dataset = v;
      continue;
    }
    if (arg == "--engine") {
      const char* v = next_value("--engine");
      if (v == nullptr) return 2;
      if (std::string(v) != "session" && std::string(v) != "legacy") {
        std::fprintf(stderr, "--engine wants session|legacy, got %s\n", v);
        return 2;
      }
      opts->engine = v;
      continue;
    }
    if (arg == "--out") {
      const char* v = next_value("--out");
      if (v == nullptr) return 2;
      opts->out = v;
      continue;
    }
    if (arg == "--shard") {
      const char* v = next_value("--shard");
      if (v == nullptr) return 2;
      if (!ParseShard(v, &opts->shard, &opts->num_shards)) {
        std::fprintf(stderr, "--shard wants K/N with 0 <= K < N, got %s\n", v);
        return 2;
      }
      continue;
    }
    if (arg == "--entities" || arg == "--min-tuples" ||
        arg == "--max-tuples" || arg == "--threads" || arg == "--rounds" ||
        arg == "--answers-per-round" || arg == "--seed" ||
        arg == "--portfolio") {
      const char* v = next_value(arg.c_str());
      if (v == nullptr) return 2;
      long long n = 0;
      // Bounds per flag: --seed takes any non-negative 64-bit value, the
      // rest are ints with a flag-specific floor (a negative --rounds
      // would make RunExperiment size vectors with max_rounds + 1 < 0).
      long long min_ok = 1;
      if (arg == "--rounds" || arg == "--min-tuples" ||
          arg == "--max-tuples" || arg == "--seed" || arg == "--portfolio") {
        min_ok = 0;
      }
      const long long max_ok =
          arg == "--seed" ? std::numeric_limits<long long>::max()
                          : std::numeric_limits<int>::max();
      if (!ParseInt64(v, &n) || n < min_ok || n > max_ok) {
        std::fprintf(stderr, "%s wants an integer >= %lld, got '%s'\n",
                     arg.c_str(), min_ok, v);
        return 2;
      }
      if (arg == "--entities") opts->entities = static_cast<int>(n);
      if (arg == "--min-tuples") opts->min_tuples = static_cast<int>(n);
      if (arg == "--max-tuples") opts->max_tuples = static_cast<int>(n);
      if (arg == "--threads") opts->threads = static_cast<int>(n);
      if (arg == "--rounds") opts->rounds = static_cast<int>(n);
      if (arg == "--answers-per-round") {
        opts->answers_per_round = static_cast<int>(n);
      }
      if (arg == "--seed") opts->seed = static_cast<uint64_t>(n);
      if (arg == "--portfolio") opts->portfolio = static_cast<int>(n);
      continue;
    }
    if (arg == "--sigma" || arg == "--gamma") {
      const char* v = next_value(arg.c_str());
      if (v == nullptr) return 2;
      char* end = nullptr;
      const double f = std::strtod(v, &end);
      if (end == v || *end != '\0' || f < 0.0 || f > 1.0) {
        std::fprintf(stderr, "%s wants a fraction in [0, 1], got '%s'\n",
                     arg.c_str(), v);
        return 2;
      }
      if (arg == "--sigma") opts->sigma_fraction = f;
      if (arg == "--gamma") opts->gamma_fraction = f;
      continue;
    }
    if (in_merge_list && !arg.empty() && arg[0] != '-') {
      opts->merge_inputs.push_back(arg);
      continue;
    }
    std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
    PrintUsage(stderr);
    return 2;
  }
  return 0;
}

Dataset MakeDataset(const CliOptions& o) {
  if (o.dataset == "nba") {
    NbaOptions opts;
    opts.num_entities = o.entities;
    if (o.seed != 0) opts.seed = o.seed;
    if (o.min_tuples > 0) opts.min_tuples = o.min_tuples;
    if (o.max_tuples > 0) opts.max_tuples = o.max_tuples;
    return GenerateNba(opts);
  }
  if (o.dataset == "career") {
    CareerOptions opts;
    opts.num_entities = o.entities;
    if (o.seed != 0) opts.seed = o.seed;
    if (o.min_tuples > 0) opts.min_tuples = o.min_tuples;
    if (o.max_tuples > 0) opts.max_tuples = o.max_tuples;
    return GenerateCareer(opts);
  }
  PersonOptions opts;
  opts.num_entities = o.entities;
  if (o.seed != 0) opts.seed = o.seed;
  if (o.min_tuples > 0) opts.min_tuples = o.min_tuples;
  if (o.max_tuples > 0) opts.max_tuples = o.max_tuples;
  return GeneratePerson(opts);
}

int WriteOutput(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return 0;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 2;
  }
  out << content;
  return out.good() ? 0 : 2;
}

int RunMerge(const CliOptions& o) {
  std::vector<ExperimentResult> parts;
  parts.reserve(o.merge_inputs.size());
  for (const std::string& path : o.merge_inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto part = ExperimentResultFromJson(buf.str());
    if (!part.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   part.status().ToString().c_str());
      return 2;
    }
    parts.push_back(std::move(part).value());
  }
  auto merged = MergeExperimentResults(parts);
  if (!merged.ok()) {
    std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
    return 2;
  }
  ResultJsonOptions jopts;
  jopts.include_timings = o.include_timings;
  return WriteOutput(o.out, ExperimentResultToJson(*merged, jopts));
}

// Dumps the pooled per-phase solver statistics on stderr (NOT into the
// result JSON: the serialized ExperimentResult must stay byte-identical
// across engines and solver-heuristic choices).
void DumpSolverStats(const ExperimentResult& r) {
  auto dump = [](const char* phase, const sat::SolverStats& s, bool last) {
    std::fprintf(stderr,
                 "    \"%s\": {\"conflicts\": %lld, \"decisions\": %lld, "
                 "\"propagations\": %lld, \"binary_propagations\": %lld, "
                 "\"restarts\": %lld, \"assumption_solves\": %lld, "
                 "\"learnt_literals\": %lld, \"lbd_sum\": %lld, "
                 "\"learnt_core\": %lld, \"learnt_mid\": %lld, "
                 "\"learnt_local\": %lld, \"subsumed\": %lld, "
                 "\"vivified\": %lld, \"model_cache_hits\": %lld, "
                 "\"gc_runs\": %lld, \"gc_reclaimed_words\": %lld, "
                 "\"bve_eliminated\": %lld, \"bve_resolvents\": %lld, "
                 "\"sls_flips\": %lld, \"sls_seeded_models\": %lld, "
                 "\"sls_probes\": %lld, \"sls_probe_wins\": %lld, "
                 "\"portfolio_races\": %lld, \"imported_units\": %lld, "
                 "\"imported_bins\": %lld, \"imported_lbd\": %lld, "
                 "\"cancelled_workers\": %lld, \"deduce_queries\": %lld, "
                 "\"deduce_model_prunes\": %lld, "
                 "\"deduce_propagation_proofs\": %lld, "
                 "\"deduce_chunk_solves\": %lld}%s\n",
                 phase, static_cast<long long>(s.conflicts),
                 static_cast<long long>(s.decisions),
                 static_cast<long long>(s.propagations),
                 static_cast<long long>(s.binary_propagations),
                 static_cast<long long>(s.restarts),
                 static_cast<long long>(s.assumption_solves),
                 static_cast<long long>(s.learnt_literals),
                 static_cast<long long>(s.lbd_sum),
                 static_cast<long long>(s.learnt_core),
                 static_cast<long long>(s.learnt_mid),
                 static_cast<long long>(s.learnt_local),
                 static_cast<long long>(s.subsumed),
                 static_cast<long long>(s.vivified),
                 static_cast<long long>(s.model_cache_hits),
                 static_cast<long long>(s.gc_runs),
                 static_cast<long long>(s.gc_reclaimed_words),
                 static_cast<long long>(s.bve_eliminated),
                 static_cast<long long>(s.bve_resolvents),
                 static_cast<long long>(s.sls_flips),
                 static_cast<long long>(s.sls_seeded_models),
                 static_cast<long long>(s.sls_probes),
                 static_cast<long long>(s.sls_probe_wins),
                 static_cast<long long>(s.portfolio_races),
                 static_cast<long long>(s.imported_units),
                 static_cast<long long>(s.imported_bins),
                 static_cast<long long>(s.imported_lbd),
                 static_cast<long long>(s.cancelled_workers),
                 static_cast<long long>(s.deduce_queries),
                 static_cast<long long>(s.deduce_model_prunes),
                 static_cast<long long>(s.deduce_propagation_proofs),
                 static_cast<long long>(s.deduce_chunk_solves),
                 last ? "" : ",");
  };
  std::fprintf(stderr, "{\n  \"solver_stats\": {\n");
  dump("encode", r.solver_encode, false);
  dump("validity", r.solver_validity, false);
  dump("deduce", r.solver_deduce, false);
  dump("suggest", r.solver_suggest, true);
  std::fprintf(stderr, "  }\n}\n");
}

int RunShard(const CliOptions& o) {
  if (o.dataset != "person" && o.dataset != "nba" && o.dataset != "career") {
    std::fprintf(stderr, "unknown --dataset %s\n", o.dataset.c_str());
    return 2;
  }
  const Dataset ds = MakeDataset(o);
  ExperimentOptions eopts;
  eopts.max_rounds = o.rounds;
  eopts.answers_per_round = o.answers_per_round;
  eopts.sigma_fraction = o.sigma_fraction;
  eopts.gamma_fraction = o.gamma_fraction;
  eopts.num_threads = o.threads;
  eopts.reuse_allocations = o.reuse_allocations;
  eopts.resolve.use_session = o.engine == "session";
  if (o.solver == "legacy") {
    eopts.resolve.solver = sat::SolverOptions::LegacyHeuristics();
  } else if (o.solver == "nogc") {
    // Modern heuristics with the arena lifecycle features off: the
    // byte-identity lane that proves GC/BVE never change results.
    eopts.resolve.solver.use_arena_gc = false;
    eopts.resolve.solver.use_bve = false;
  } else if (o.solver == "nosls") {
    // Modern heuristics without the local-search warm starts: the
    // byte-identity lane (and the bench baseline) that proves SLS only
    // changes time-to-verdict. "sls" is an alias of the default.
    eopts.resolve.solver.use_sls_seeding = false;
    eopts.resolve.solver.use_sls_probing = false;
  } else if (o.solver == "nobackbone") {
    // Modern heuristics with the per-pair Lemma-6 loop instead of the
    // backbone engine: the byte-identity lane that proves model sweeping
    // and chunked certification return exactly the naive pair set. Only
    // observable on the --deduce naive pipeline.
    eopts.resolve.solver.use_backbone_deduce = false;
  }
  eopts.resolve.naive_deduce = o.deduce == "naive";
  if (o.portfolio > 1) {
    // The byte-identity lane for parallel search: verdicts may not depend
    // on which worker wins or what clauses were shared. Defer gate zero
    // makes every solve race — the pipeline's per-round solves are small
    // enough that the default gate would let them all finish inside the
    // sequential warm-up and the lane would test nothing.
    eopts.resolve.solver.portfolio_threads = o.portfolio;
    eopts.resolve.solver.portfolio_defer_conflicts = 0;
  }
  const std::vector<int> indices = ShardIndices(
      static_cast<int>(ds.entities.size()), o.shard, o.num_shards);
  ExperimentResult result;
  if (indices.empty()) {
    // More shards than entities: this shard owns nothing. An empty index
    // list must NOT fall through to RunExperiment, which reads it as
    // "whole corpus" — that would double-count entities in the merge.
    // Emit the zero-entity result RunExperiment produces for no work.
    result.accuracy_by_round.assign(o.rounds + 1, AccuracyCounts{});
    RecomputePctTrueByRound(&result);
  } else {
    result = RunExperiment(ds, eopts, indices);
  }
  if (o.solver_stats) DumpSolverStats(result);
  ResultJsonOptions jopts;
  jopts.include_timings = o.include_timings;
  return WriteOutput(o.out, ExperimentResultToJson(result, jopts));
}

}  // namespace
}  // namespace ccr

int main(int argc, char** argv) {
  ccr::CliOptions opts;
  const int parse = ccr::ParseArgs(argc, argv, &opts);
  if (parse == 1) return 0;  // --help
  if (parse != 0) return 2;
  if (opts.merge_mode) {
    if (opts.merge_inputs.empty()) {
      std::fprintf(stderr, "--merge needs at least one shard file\n");
      return 2;
    }
    return ccr::RunMerge(opts);
  }
  return ccr::RunShard(opts);
}
