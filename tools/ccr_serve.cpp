// ccr_serve: the resolution-as-a-service daemon. Keeps warm
// ResolutionSessions resident up to a cap, evicts cold sessions to
// snapshots and rehydrates them on demand, and serves the framed protocol
// of docs/PROTOCOL.md on a Unix or TCP socket.
//
//   # loopback TCP on an OS-picked port (printed on the READY line)
//   ccr_serve --listen tcp:0
//   # unix socket, 4 workers, at most 128 warm sessions
//   ccr_serve --listen unix:/tmp/ccr.sock --workers 4 --max-resident 128
//
// The daemon prints exactly one "READY <address>" line on stdout once the
// socket is listening (scripts wait for it), then serves until SIGINT,
// SIGTERM, or a SHUTDOWN frame, and exits 0 after printing final stats.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/ccr.h"

namespace ccr {
namespace service {
namespace {

Server* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: just request the stop; main does the real work.
  if (g_server != nullptr) g_server->RequestShutdown();
}

void PrintUsage(std::FILE* to) {
  std::fprintf(to,
               "Usage: ccr_serve [flags]\n"
               "\n"
               "  --listen SPEC     unix:/path or tcp:PORT (default tcp:0;\n"
               "                    port 0 = OS-picked, see the READY line)\n"
               "  --workers N       request worker threads (default 2)\n"
               "  --max-resident N  warm session cap; colder sessions are\n"
               "                    evicted to snapshots (default 64)\n"
               "  --queue-cap N     admission queue bound; a full queue\n"
               "                    rejects with OVERLOADED (default 256)\n"
               "  --deadline-ms N   default per-request deadline, 0 = none\n"
               "                    (default 0)\n"
               "  --max-conns N     concurrent connection cap (default 256)\n"
               "  --help            this text\n"
               "\n"
               "Protocol: docs/PROTOCOL.md. Tuning: docs/OPERATIONS.md.\n");
}

int Main(int argc, char** argv) {
  ServiceOptions service;
  ServerOptions server_opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    }
    if (arg == "--listen") {
      const char* v = next_value("--listen");
      if (v == nullptr) return 2;
      server_opts.listen = v;
      continue;
    }
    if (arg == "--workers") {
      const char* v = next_value("--workers");
      if (v == nullptr) return 2;
      service.workers = std::atoi(v);
      continue;
    }
    if (arg == "--max-resident") {
      const char* v = next_value("--max-resident");
      if (v == nullptr) return 2;
      service.max_resident = std::atoi(v);
      continue;
    }
    if (arg == "--queue-cap") {
      const char* v = next_value("--queue-cap");
      if (v == nullptr) return 2;
      service.queue_capacity = std::atoi(v);
      continue;
    }
    if (arg == "--deadline-ms") {
      const char* v = next_value("--deadline-ms");
      if (v == nullptr) return 2;
      service.default_deadline_ms = std::atoll(v);
      continue;
    }
    if (arg == "--max-conns") {
      const char* v = next_value("--max-conns");
      if (v == nullptr) return 2;
      server_opts.max_connections = std::atoi(v);
      continue;
    }
    std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
    PrintUsage(stderr);
    return 2;
  }
  if (service.workers < 1 || service.max_resident < 1 ||
      service.queue_capacity < 1 || server_opts.max_connections < 1) {
    std::fprintf(stderr,
                 "--workers, --max-resident, --queue-cap and --max-conns "
                 "must be positive\n");
    return 2;
  }

  SessionManager manager(service);
  Server server(&manager, server_opts);
  const Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "ccr_serve: %s\n", st.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  if (server.port() >= 0) {
    std::printf("READY tcp:%d\n", server.port());
  } else {
    std::printf("READY %s\n", server_opts.listen.c_str());
  }
  std::fflush(stdout);

  server.Wait();
  server.Shutdown();
  g_server = nullptr;

  const ServiceReply stats =
      manager.Call(ServiceRequest{RequestType::kStats, "", "", 0});
  manager.Shutdown();
  std::printf("STATS %s\n", stats.payload.c_str());
  return 0;
}

}  // namespace
}  // namespace service
}  // namespace ccr

int main(int argc, char** argv) {
  return ccr::service::Main(argc, argv);
}
